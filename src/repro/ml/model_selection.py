"""Model-selection utilities: K-fold CV, train/test split, grid search.

The paper's protocol (§5.3–5.4) uses 5-fold cross-validation and GridSearch
for the RNN baselines' hyperparameters; these are the minimal pieces needed
to run it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_fraction, check_positive
from .base import Regressor, clone
from .metrics import mape


class KFold:
    """Deterministic (optionally shuffled) K-fold index generator."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = False,
        random_state: "int | None" = 0,
    ) -> None:
        if n_splits < 2:
            raise ValidationError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        check_positive(n_samples, "n_samples")
        if n_samples < self.n_splits:
            raise ValidationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            as_generator(self.random_state).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            test = folds[k]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield train, test


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    shuffle: bool = True,
    random_state: "int | None" = 0,
):
    """Split any number of same-length arrays into train/test parts.

    Returns ``train_a, test_a, train_b, test_b, ...`` in sklearn order.
    """
    if not arrays:
        raise ValidationError("need at least one array")
    check_fraction(test_size, "test_size")
    n = np.asarray(arrays[0]).shape[0]
    for a in arrays[1:]:
        if np.asarray(a).shape[0] != n:
            raise ValidationError("arrays must share first-dimension length")
    n_test = int(round(n * test_size))
    if not 0 < n_test < n:
        raise ValidationError(
            f"test_size={test_size} leaves an empty split for n={n}"
        )
    indices = np.arange(n)
    if shuffle:
        as_generator(random_state).shuffle(indices)
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    out = []
    for a in arrays:
        arr = np.asarray(a)
        out.extend([arr[train_idx], arr[test_idx]])
    return tuple(out)


def cross_val_score(
    model: Regressor,
    X,
    y,
    cv: "KFold | int" = 5,
    scorer: Callable = mape,
) -> np.ndarray:
    """Per-fold scores (default scorer: MAPE, lower is better)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    kf = KFold(cv) if isinstance(cv, int) else cv
    scores = []
    for train, test in kf.split(X.shape[0]):
        est = clone(model)
        est.fit(X[train], y[train])
        scores.append(scorer(y[test], est.predict(X[test])))
    return np.asarray(scores)


@dataclass
class GridSearchResult:
    params: dict
    score: float


class GridSearchCV:
    """Exhaustive hyperparameter search with K-fold CV (lower score wins).

    Matches the paper's use of GridSearch to tune the RNN baselines in each
    cross-validation round.
    """

    def __init__(
        self,
        model: Regressor,
        param_grid: Mapping[str, Sequence],
        cv: "KFold | int" = 5,
        scorer: Callable = mape,
    ) -> None:
        if not param_grid:
            raise ValidationError("param_grid must be non-empty")
        self.model = model
        self.param_grid = {k: list(v) for k, v in param_grid.items()}
        self.cv = cv
        self.scorer = scorer
        self.results_: list[GridSearchResult] = []
        self.best_params_: "dict | None" = None
        self.best_score_: float = np.inf
        self.best_estimator_: "Regressor | None" = None

    def _candidates(self) -> Iterator[dict]:
        keys = sorted(self.param_grid)
        for combo in itertools.product(*(self.param_grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def fit(self, X, y) -> "GridSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.results_ = []
        for params in self._candidates():
            est = clone(self.model).set_params(**params)
            scores = cross_val_score(est, X, y, cv=self.cv, scorer=self.scorer)
            mean_score = float(scores.mean())
            self.results_.append(GridSearchResult(params, mean_score))
            if mean_score < self.best_score_:
                self.best_score_ = mean_score
                self.best_params_ = params
        self.best_estimator_ = clone(self.model).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if self.best_estimator_ is None:
            raise ValidationError("GridSearchCV.predict before fit")
        return self.best_estimator_.predict(X)
