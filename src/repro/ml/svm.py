"""Support-vector regression (epsilon-insensitive, RBF kernel).

Implemented in the primal over a kernel expansion (representer theorem):
``f(x) = Σ_j α_j K(a_j, x) + b`` where the anchors ``a_j`` are a random
subset of the training set (Nyström-style subsampling). This keeps the
kernel matrix at ``n × m`` with ``m ≤ max_anchors``, so campaign-sized
training sets (thousands of rows) do not materialise an n² Gram matrix.
The α are fitted with Adam on the ε-insensitive loss plus an L2 penalty —
the same objective as classic SVR, solved in the primal rather than the
dual, which for a fixed anchor budget gives equivalent models at a fraction
of the implementation complexity.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError
from ..utils.rng import as_generator
from ..utils.validation import check_2d, check_positive
from .base import Regressor


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """``exp(-gamma ||a-b||²)`` for all pairs; no explicit loops."""
    d2 = (
        (A**2).sum(axis=1)[:, None]
        - 2.0 * A @ B.T
        + (B**2).sum(axis=1)[None, :]
    )
    np.maximum(d2, 0.0, out=d2)
    return np.exp(-gamma * d2)


class SVR(Regressor):
    """ε-insensitive RBF support-vector regression.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger C ⇒ less regularisation),
        matching the libsvm convention.
    epsilon:
        Half-width of the insensitive tube.
    gamma:
        RBF width; ``"scale"`` uses ``1 / (d · var(X))`` like scikit-learn's
        "automatic options" in Table 4.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: "float | str" = "scale",
        max_anchors: int = 800,
        max_iter: int = 500,
        lr: float = 0.05,
        random_state: "int | None" = 0,
    ) -> None:
        check_positive(C, "C")
        check_positive(epsilon, "epsilon", strict=False)
        check_positive(max_anchors, "max_anchors")
        check_positive(max_iter, "max_iter")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.max_anchors = int(max_anchors)
        self.max_iter = int(max_iter)
        self.lr = float(lr)
        self.random_state = random_state
        self.alpha_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.anchors_: np.ndarray | None = None
        self.gamma_: float = 1.0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = float(X.var())
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        return float(self.gamma)

    def fit(self, X, y) -> "SVR":
        X, y = self._validate_xy(X, y)
        rng = as_generator(self.random_state)
        n = X.shape[0]
        m = min(n, self.max_anchors)
        anchor_idx = rng.choice(n, size=m, replace=False)
        self.anchors_ = X[anchor_idx].copy()
        self.gamma_ = self._resolve_gamma(X)
        K = rbf_kernel(X, self.anchors_, self.gamma_)

        alpha = np.zeros(m)
        b = float(np.median(y))
        # Adam state
        m1 = np.zeros(m + 1)
        m2 = np.zeros(m + 1)
        beta1, beta2, eps_adam = 0.9, 0.999, 1e-8
        lam = 1.0 / (self.C * n)
        for it in range(self.max_iter):
            f = K @ alpha + b
            err = f - y
            # Subgradient of the ε-insensitive loss.
            g = np.sign(err) * (np.abs(err) > self.epsilon)
            grad_alpha = K.T @ g / n + lam * alpha
            grad_b = float(g.mean())
            grad = np.concatenate([grad_alpha, [grad_b]])
            m1 = beta1 * m1 + (1 - beta1) * grad
            m2 = beta2 * m2 + (1 - beta2) * grad**2
            m1h = m1 / (1 - beta1 ** (it + 1))
            m2h = m2 / (1 - beta2 ** (it + 1))
            step = self.lr * m1h / (np.sqrt(m2h) + eps_adam)
            alpha -= step[:-1]
            b -= float(step[-1])
            if not np.isfinite(alpha).all():
                raise ConvergenceError("SVR diverged; scale inputs or lower lr")
        self.alpha_, self.intercept_ = alpha, float(b)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("alpha_")
        X = check_2d(X, "X")
        K = rbf_kernel(X, self.anchors_, self.gamma_)
        return K @ self.alpha_ + self.intercept_

    @property
    def n_support_(self) -> int:
        """Anchors with non-negligible weight (analogue of support vectors)."""
        self._check_fitted("alpha_")
        scale = np.abs(self.alpha_).max() or 1.0
        return int((np.abs(self.alpha_) > 1e-3 * scale).sum())
