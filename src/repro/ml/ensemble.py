"""Tree ensembles from Table 4: random forest and gradient boosting.

Both use ``#trees = 10`` in the paper's baseline configuration.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import as_generator
from ..utils.validation import check_2d, check_positive
from .base import Regressor
from .tree import DecisionTreeRegressor


class RandomForestRegressor(Regressor):
    """Bagged CART trees with per-split feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: "int | None" = None,
        min_samples_leaf: int = 1,
        max_features: "int | float | None" = 0.7,
        random_state: "int | None" = 0,
    ) -> None:
        check_positive(n_estimators, "n_estimators")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.random_state = random_state
        self.estimators_: "list[DecisionTreeRegressor] | None" = None
        self._compiled = None  # stacked flat-array predictor (repro.perf)

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = self._validate_xy(X, y)
        self._compiled = None
        rng = as_generator(self.random_state)
        n = X.shape[0]
        trees = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            trees.append(tree)
        self.estimators_ = trees
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_2d(X, "X")
        if self._compiled is None:
            from ..perf import compile_forest  # lazy: perf and ml are peers

            self._compiled = compile_forest(self)
        return self._compiled.predict(X)

    def _predict_walk(self, X) -> np.ndarray:
        """Reference path: per-tree object walk, then the bagged mean."""
        self._check_fitted("estimators_")
        X = check_2d(X, "X")
        from ..perf.telemetry import record_predict  # lazy: perf and ml are peers

        record_predict("forest", "walk", X.shape[0])
        preds = np.stack([t._predict_walk(X) for t in self.estimators_])
        return preds.mean(axis=0)


class GradientBoostingRegressor(Regressor):
    """Least-squares gradient boosting on shallow CART trees.

    Each stage fits the residual of the running prediction; shrinkage
    (``learning_rate``) trades stage count against overfitting.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        learning_rate: float = 0.3,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: "int | None" = 0,
    ) -> None:
        check_positive(n_estimators, "n_estimators")
        check_positive(learning_rate, "learning_rate")
        check_positive(max_depth, "max_depth")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must lie in (0, 1], got {subsample}")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.random_state = random_state
        self.estimators_: "list[DecisionTreeRegressor] | None" = None
        self.init_: float = 0.0
        self._compiled = None  # stacked flat-array predictor (repro.perf)

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = self._validate_xy(X, y)
        self._compiled = None
        rng = as_generator(self.random_state)
        n = X.shape[0]
        self.init_ = float(y.mean())
        current = np.full(n, self.init_)
        trees = []
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                k = max(1, int(round(self.subsample * n)))
                idx = rng.choice(n, size=k, replace=False)
            else:
                idx = slice(None)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], residual[idx])
            current += self.learning_rate * tree.predict(X)
            trees.append(tree)
        self.estimators_ = trees
        return self

    def _compile(self):
        if self._compiled is None:
            from ..perf import compile_boosting  # lazy: perf and ml are peers

            self._compiled = compile_boosting(self)
        return self._compiled

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_2d(X, "X")
        return self._compile().predict(X)

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for diagnostics)."""
        self._check_fitted("estimators_")
        X = check_2d(X, "X")
        yield from self._compile().staged(X)

    def _predict_walk(self, X) -> np.ndarray:
        """Reference path: sequential shrinkage sum of per-tree walks."""
        self._check_fitted("estimators_")
        X = check_2d(X, "X")
        from ..perf.telemetry import record_predict  # lazy: perf and ml are peers

        record_predict("boosting", "walk", X.shape[0])
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree._predict_walk(X)
        return out
