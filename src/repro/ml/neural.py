"""Multi-layer perceptron regression with Adam.

This single class serves three roles in the reproduction:

* the **NN baseline** from Table 4 (``hidden_size=30, max_iter=10000``),
  standing in for the BP-ANN / FFNN prior work;
* the **SRR model** (paper §4.3) — a shallow MLP mapping
  ``(P_node, PMCs) → (P_CPU, P_MEM)``; SRR uses ``n_outputs=2``;
* a building block for hyperparameter sweeps (§6.4.3).

Multi-output support is native: ``fit`` accepts a 1-D target or an
``(n, k)`` matrix, and ``predict`` returns the matching shape.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_2d, check_consistent_length, check_positive
from .base import Regressor


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


_ACTIVATIONS = {
    "relu": (_relu, lambda a: (a > 0).astype(a.dtype)),
    "tanh": (_tanh, lambda a: 1.0 - a**2),
}


class MLPRegressor(Regressor):
    """Fully-connected network trained with minibatch Adam on MSE.

    ``hidden_layer_sizes`` may be an int (one hidden layer) or a tuple.
    Inputs/targets are standardised internally so callers can feed raw
    PMC counts; predictions are returned in original units.
    """

    def __init__(
        self,
        hidden_layer_sizes: "int | tuple[int, ...]" = 30,
        activation: str = "relu",
        max_iter: int = 10000,
        lr: float = 1e-3,
        batch_size: int = 64,
        alpha: float = 1e-5,
        tol: float = 1e-7,
        n_iter_no_change: int = 20,
        random_state: "int | None" = 0,
    ) -> None:
        if isinstance(hidden_layer_sizes, int):
            hidden_layer_sizes = (hidden_layer_sizes,)
        if not hidden_layer_sizes or any(h < 1 for h in hidden_layer_sizes):
            raise ValidationError("hidden_layer_sizes must be positive ints")
        if activation not in _ACTIVATIONS:
            raise ValidationError(f"unknown activation {activation!r}")
        check_positive(max_iter, "max_iter")
        check_positive(lr, "lr")
        check_positive(batch_size, "batch_size")
        self.hidden_layer_sizes = tuple(int(h) for h in hidden_layer_sizes)
        self.activation = activation
        self.max_iter = int(max_iter)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.alpha = float(alpha)
        self.tol = float(tol)
        self.n_iter_no_change = int(n_iter_no_change)
        self.random_state = random_state
        self.weights_: "list[np.ndarray] | None" = None
        self.biases_: "list[np.ndarray] | None" = None
        self.loss_curve_: list[float] = []
        self.n_iter_: int = 0
        self._x_mean = self._x_scale = None
        self._y_mean = self._y_scale = None
        self._single_output = True
        # Adam state (moment buffers + step counter) persists across warm
        # starts so fine-tuning continues the optimiser trajectory instead of
        # re-zeroing moments against a stale bias-correction step.
        self._adam_state: "tuple | None" = None
        self._compiled = None  # fused forward pass, built lazily (repro.perf)

    # ------------------------------------------------------------------ fit
    def _init_params(self, sizes: list[int], rng) -> None:
        self.weights_, self.biases_ = [], []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))  # Glorot uniform
            self.weights_.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def fit(self, X, y, warm_start: bool = False, max_iter: "int | None" = None) -> "MLPRegressor":
        """Train the network.

        ``warm_start=True`` continues from current weights — this is how the
        active-learning stage fine-tunes SRR with reinforcement samples.
        """
        X = check_2d(X, "X")
        y_arr = np.asarray(y, dtype=np.float64)
        self._single_output = y_arr.ndim == 1
        Y = y_arr.reshape(-1, 1) if self._single_output else y_arr
        check_consistent_length(X, Y, names=("X", "y"))
        rng = as_generator(self.random_state)
        self._compiled = None  # weights are about to change

        if not (warm_start and self.weights_ is not None):
            self._x_mean = X.mean(axis=0)
            xs = X.std(axis=0)
            xs[xs == 0.0] = 1.0
            self._x_scale = xs
            self._y_mean = Y.mean(axis=0)
            ys = Y.std(axis=0)
            ys[ys == 0.0] = 1.0
            self._y_scale = ys
            sizes = [X.shape[1], *self.hidden_layer_sizes, Y.shape[1]]
            self._init_params(sizes, rng)
            self.loss_curve_ = []
            self._adam_state = None

        Xs = (X - self._x_mean) / self._x_scale
        Ys = (Y - self._y_mean) / self._y_scale
        act, act_grad = _ACTIVATIONS[self.activation]
        W, B = self.weights_, self.biases_
        if self._adam_state is not None:
            mw, vw, mb, vb, t0 = self._adam_state
        else:
            mw = [np.zeros_like(w) for w in W]
            vw = [np.zeros_like(w) for w in W]
            mb = [np.zeros_like(b) for b in B]
            vb = [np.zeros_like(b) for b in B]
            t0 = 0
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        n = Xs.shape[0]
        bs = min(self.batch_size, n)
        best_loss, stall = np.inf, 0
        iters = self.max_iter if max_iter is None else int(max_iter)
        it = -1
        for it in range(iters):
            idx = rng.integers(0, n, size=bs)
            xb, yb = Xs[idx], Ys[idx]
            # Forward
            activations = [xb]
            for li, (w, b) in enumerate(zip(W, B)):
                z = activations[-1] @ w + b
                activations.append(act(z) if li < len(W) - 1 else z)
            pred = activations[-1]
            err = pred - yb
            loss = float(np.mean(err**2))
            if not np.isfinite(loss):
                raise ConvergenceError("MLP training diverged (loss is not finite)")
            self.loss_curve_.append(loss)
            # Backward
            delta = 2.0 * err / (bs * yb.shape[1])
            # Bias-correction step: one Adam update has happened per recorded
            # minibatch loss *of this optimiser run*; t0 carries the count
            # across warm starts so the moments and the correction agree.
            t = t0 + it + 1
            for li in range(len(W) - 1, -1, -1):
                a_prev = activations[li]
                gw = a_prev.T @ delta + self.alpha * W[li]
                gb = delta.sum(axis=0)
                if li > 0:
                    delta = (delta @ W[li].T) * act_grad(activations[li])
                mw[li] = beta1 * mw[li] + (1 - beta1) * gw
                vw[li] = beta2 * vw[li] + (1 - beta2) * gw**2
                mb[li] = beta1 * mb[li] + (1 - beta1) * gb
                vb[li] = beta2 * vb[li] + (1 - beta2) * gb**2
                W[li] -= self.lr * (mw[li] / (1 - beta1**t)) / (
                    np.sqrt(vw[li] / (1 - beta2**t)) + eps
                )
                B[li] -= self.lr * (mb[li] / (1 - beta1**t)) / (
                    np.sqrt(vb[li] / (1 - beta2**t)) + eps
                )
            # Early stopping on smoothed minibatch loss.
            if it % 50 == 0:
                recent = float(np.mean(self.loss_curve_[-50:]))
                if recent < best_loss - self.tol:
                    best_loss, stall = recent, 0
                else:
                    stall += 1
                    if stall >= self.n_iter_no_change:
                        break
        self.n_iter_ = it + 1
        self._adam_state = (mw, vw, mb, vb, t0 + it + 1)
        return self

    def partial_fit(self, X, y, n_steps: int = 100) -> "MLPRegressor":
        """Fine-tune with a small step budget (active-learning stage)."""
        return self.fit(X, y, warm_start=True, max_iter=n_steps)

    # -------------------------------------------------------------- predict
    def predict(self, X) -> np.ndarray:
        self._check_fitted("weights_")
        X = check_2d(X, "X")
        if self._compiled is None:
            from ..perf import compile_mlp  # lazy: perf and ml are peers

            self._compiled = compile_mlp(self)
        return self._compiled.predict(X)

    def _predict_reference(self, X) -> np.ndarray:
        """Unfused forward pass (standardise → matmuls → de-standardise).

        Ground truth for the compiled fast path's equivalence suite; the
        fused pass reassociates the affine folds, so agreement is ~1e-13
        relative rather than bit-exact.
        """
        self._check_fitted("weights_")
        X = check_2d(X, "X")
        from ..perf.telemetry import record_predict  # lazy: perf and ml are peers

        record_predict("mlp", "walk", X.shape[0])
        act, _ = _ACTIVATIONS[self.activation]
        a = (X - self._x_mean) / self._x_scale
        for li, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            z = a @ w + b
            a = act(z) if li < len(self.weights_) - 1 else z
        out = a * self._y_scale + self._y_mean
        return out.ravel() if self._single_output else out
