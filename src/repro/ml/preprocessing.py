"""Feature scaling.

PMC counts span ~9 orders of magnitude (cycles vs. branch mispredictions),
so every gradient-based model in the registry is wrapped with a scaler.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..utils.validation import check_2d


class StandardScaler:
    """Zero-mean unit-variance scaling, column-wise.

    Columns with zero variance are left centred but unscaled (divide by 1)
    so constant features don't produce NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = check_2d(X, "X")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler.transform before fit")
        X = check_2d(X, "X")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler.inverse_transform before fit")
        X = check_2d(X, "X")
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each column into ``[lo, hi]`` (default [0, 1]).

    Constant columns map to ``lo``.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = check_2d(X, "X")
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler.transform before fit")
        X = check_2d(X, "X")
        lo, hi = self.feature_range
        unit = (X - self.min_) / self.range_
        return unit * (hi - lo) + lo

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler.inverse_transform before fit")
        X = check_2d(X, "X")
        lo, hi = self.feature_range
        unit = (X - lo) / (hi - lo)
        return unit * self.range_ + self.min_


class PolynomialFeatures:
    """Degree-2 feature expansion: [x, x², optional pairwise products].

    Classic power-modeling trick — dynamic power is quadratic-ish in
    voltage/activity proxies — used to give linear models a nonlinear
    reach without changing the solver.
    """

    def __init__(self, interaction: bool = False) -> None:
        self.interaction = bool(interaction)
        self.n_input_features_: "int | None" = None

    def fit(self, X) -> "PolynomialFeatures":
        X = check_2d(X, "X")
        self.n_input_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        if self.n_input_features_ is None:
            raise NotFittedError("PolynomialFeatures.transform before fit")
        X = check_2d(X, "X")
        if X.shape[1] != self.n_input_features_:
            raise ValidationError(
                f"expected {self.n_input_features_} features, got {X.shape[1]}"
            )
        parts = [X, X**2]
        if self.interaction:
            d = X.shape[1]
            pairs = [X[:, i] * X[:, j] for i in range(d) for j in range(i + 1, d)]
            if pairs:
                parts.append(np.column_stack(pairs))
        return np.hstack(parts)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        if self.n_input_features_ is None:
            raise NotFittedError("PolynomialFeatures not fitted")
        d = self.n_input_features_
        out = 2 * d
        if self.interaction:
            out += d * (d - 1) // 2
        return out


class TargetScaler:
    """1-D convenience wrapper around :class:`StandardScaler` for targets."""

    def __init__(self) -> None:
        self._scaler = StandardScaler()

    def fit(self, y) -> "TargetScaler":
        self._scaler.fit(np.asarray(y, dtype=np.float64).reshape(-1, 1))
        return self

    def transform(self, y) -> np.ndarray:
        return self._scaler.transform(
            np.asarray(y, dtype=np.float64).reshape(-1, 1)
        ).ravel()

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, y) -> np.ndarray:
        return self._scaler.inverse_transform(
            np.asarray(y, dtype=np.float64).reshape(-1, 1)
        ).ravel()
