"""Model diagnostics: feature importance and learning curves.

The paper notes that PMC-based model precision "relies heavily on
ingeniously designed feature engineering" (§6.1.2) while HighRPM uses the
same raw counters everywhere. These tools quantify that: permutation
importance shows which Table-2 events actually carry power information,
and learning curves show how much campaign data each model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_1d, check_2d, check_consistent_length
from .base import Regressor, clone
from .metrics import mape


@dataclass(frozen=True)
class FeatureImportance:
    """Permutation importance per feature: error increase when shuffled."""

    names: tuple[str, ...]
    base_score: float
    increases: np.ndarray  # same order as names; higher = more important

    def ranked(self) -> list[tuple[str, float]]:
        order = np.argsort(self.increases)[::-1]
        return [(self.names[i], float(self.increases[i])) for i in order]


def permutation_importance(
    model: Regressor,
    X,
    y,
    feature_names: "Sequence[str] | None" = None,
    n_repeats: int = 3,
    scorer: Callable = mape,
    rng: "int | np.random.Generator | None" = 0,
) -> FeatureImportance:
    """Error increase when each (fitted) model input column is shuffled.

    The model must already be fitted on data of the same shape; scoring is
    done on ``(X, y)`` as given (use a held-out set for honest numbers).
    """
    X = check_2d(X, "X")
    y = check_1d(y, "y")
    check_consistent_length(X, y, names=("X", "y"))
    if n_repeats < 1:
        raise ValidationError("n_repeats must be >= 1")
    names = tuple(feature_names) if feature_names else tuple(
        f"f{i}" for i in range(X.shape[1])
    )
    if len(names) != X.shape[1]:
        raise ValidationError("feature_names length must match X columns")
    g = as_generator(rng)
    base = scorer(y, model.predict(X))
    increases = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        bumps = []
        for _ in range(n_repeats):
            Xp = X.copy()
            g.shuffle(Xp[:, j])
            bumps.append(scorer(y, model.predict(Xp)) - base)
        increases[j] = float(np.mean(bumps))
    return FeatureImportance(names=names, base_score=float(base), increases=increases)


@dataclass(frozen=True)
class LearningCurve:
    """Held-out error as a function of training-set size."""

    sizes: np.ndarray
    scores: np.ndarray  # one score per size (lower = better for MAPE)


def learning_curve(
    model: Regressor,
    X_train,
    y_train,
    X_test,
    y_test,
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
    scorer: Callable = mape,
    rng: "int | np.random.Generator | None" = 0,
) -> LearningCurve:
    """Fit clones on growing prefixes of a shuffled training set."""
    X_train = check_2d(X_train, "X_train")
    y_train = check_1d(y_train, "y_train")
    check_consistent_length(X_train, y_train, names=("X_train", "y_train"))
    if not fractions or any(not 0 < f <= 1 for f in fractions):
        raise ValidationError("fractions must lie in (0, 1]")
    g = as_generator(rng)
    order = g.permutation(X_train.shape[0])
    sizes, scores = [], []
    for frac in fractions:
        k = max(2, int(round(frac * X_train.shape[0])))
        idx = order[:k]
        est = clone(model)
        est.fit(X_train[idx], y_train[idx])
        sizes.append(k)
        scores.append(scorer(y_test, est.predict(X_test)))
    return LearningCurve(sizes=np.asarray(sizes), scores=np.asarray(scores))
