"""The Table-4 baseline model zoo.

Twelve regressors, keyed by the paper's abbreviations, each constructed with
the hyperparameters from Table 4. Gradient-sensitive models are wrapped in a
:class:`ScaledRegressor` (standardise features, fit, predict) — the paper's
"automatic options" imply sklearn's internal scaling-friendly defaults, and
raw PMC counts span nine orders of magnitude.

The two RNN entries consume sequence input ``(n, T, d)``; the benchmark
harness routes windowed datasets to them and flat datasets to the rest (see
``SEQUENCE_MODELS``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ValidationError
from ..utils.validation import check_2d
from .base import Regressor
from .ensemble import GradientBoostingRegressor, RandomForestRegressor
from .linear import LassoRegression, LinearRegression, RidgeRegression, SGDRegressor
from .neighbors import KNeighborsRegressor
from .neural import MLPRegressor
from .preprocessing import StandardScaler
from .recurrent import GRURegressor, LSTMRegressor
from .svm import SVR
from .tree import DecisionTreeRegressor


class ScaledRegressor(Regressor):
    """Minimal pipeline: StandardScaler on X, then the wrapped regressor."""

    def __init__(self, inner: Regressor) -> None:
        self.inner = inner
        self._scaler: StandardScaler | None = None

    def fit(self, X, y) -> "ScaledRegressor":
        X = check_2d(X, "X")
        self._scaler = StandardScaler().fit(X)
        self.inner.fit(self._scaler.transform(X), np.asarray(y, dtype=np.float64))
        return self

    def predict(self, X) -> np.ndarray:
        if self._scaler is None:
            raise ValidationError("ScaledRegressor.predict before fit")
        return self.inner.predict(self._scaler.transform(check_2d(X, "X")))

    def get_params(self):
        # Hand out an unfitted copy so clone() yields a genuinely fresh
        # pipeline (cross-validation clones before every fold).
        from .base import clone as _clone

        return {"inner": _clone(self.inner)}


#: Table-4 configurations. Values are zero-arg factories so every call hands
#: out a fresh, unfitted estimator.
BASELINE_MODELS: dict[str, Callable[[], Regressor]] = {
    # -- linear ------------------------------------------------------------
    "LR": lambda: LinearRegression(),
    "LaR": lambda: ScaledRegressor(LassoRegression(alpha=0.01)),
    "RR": lambda: ScaledRegressor(RidgeRegression(alpha=1.0)),
    "SGD": lambda: ScaledRegressor(SGDRegressor(max_iter=10000)),
    # -- nonlinear ---------------------------------------------------------
    "DT": lambda: DecisionTreeRegressor(min_samples_leaf=2),
    "RF": lambda: RandomForestRegressor(n_estimators=10, random_state=7),
    "GB": lambda: GradientBoostingRegressor(n_estimators=10, random_state=7),
    "KNN": lambda: ScaledRegressor(KNeighborsRegressor(n_neighbors=3)),
    "SVM": lambda: ScaledRegressor(SVR(gamma="scale")),
    "NN": lambda: MLPRegressor(hidden_layer_sizes=30, max_iter=10000),
    # -- recurrent ----------------------------------------------------------
    "GRU": lambda: GRURegressor(num_layers=2, random_state=7),
    "LSTM": lambda: LSTMRegressor(num_layers=2, random_state=7),
}

#: Models that take (batch, time, features) windows instead of flat rows.
SEQUENCE_MODELS: frozenset[str] = frozenset({"GRU", "LSTM"})

#: Paper's grouping, used for table formatting.
MODEL_GROUPS: dict[str, tuple[str, ...]] = {
    "Linear": ("LR", "LaR", "RR", "SGD"),
    "Nonlinear": ("DT", "RF", "GB", "KNN", "SVM", "NN"),
    "RNN": ("GRU", "LSTM"),
}


def baseline_names() -> tuple[str, ...]:
    """All twelve abbreviations, in Table-4 order."""
    return tuple(BASELINE_MODELS)


def make_baseline(name: str) -> Regressor:
    """A fresh estimator for one Table-4 abbreviation."""
    try:
        factory = BASELINE_MODELS[name]
    except KeyError:
        raise ValidationError(
            f"unknown baseline {name!r}; known: {sorted(BASELINE_MODELS)}"
        ) from None
    return factory()


def is_sequence_model(name: str) -> bool:
    """True when the abbreviation names an RNN baseline (window input)."""
    return name in SEQUENCE_MODELS
