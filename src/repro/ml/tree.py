"""CART regression tree (squared-error criterion).

This is the ResModel learner StaticTRR uses (the paper tried every Table-4
model and found the decision tree best for residual prediction) and the base
learner for the forest/boosting ensembles.

Split search is vectorised: for each feature the candidate thresholds are
scanned with cumulative sums, so finding the best split of a node costs
O(d · n log n) with no Python-level inner loop over samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import as_generator
from ..utils.validation import check_2d, check_positive
from .base import Regressor


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "int" = -1
    right: "int" = -1


def _best_split_for_feature(
    x: np.ndarray, y: np.ndarray, min_leaf: int
) -> tuple[float, float]:
    """Best (score gain proxy, threshold) splitting on one feature.

    Returns ``(weighted_sse, threshold)`` where weighted_sse is the sum of
    child SSEs (lower is better), or ``(inf, nan)`` when no valid split
    exists. Reference implementation: :func:`_best_split` scans all
    candidate features in one vectorised pass with identical arithmetic;
    this single-feature form is kept as the ground truth it is verified
    against (tests/test_ml_tree.py).
    """
    order = np.argsort(x, kind="stable")
    xs, ys = x[order], y[order]
    n = xs.shape[0]
    # Candidate split positions: between distinct consecutive x values,
    # respecting the minimum leaf size.
    csum = np.cumsum(ys)
    csum_sq = np.cumsum(ys**2)
    total, total_sq = csum[-1], csum_sq[-1]
    k = np.arange(1, n)  # left child sizes
    valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & ((n - k) >= min_leaf)
    if not valid.any():
        return np.inf, np.nan
    left_sum, left_sq = csum[:-1], csum_sq[:-1]
    right_sum, right_sq = total - left_sum, total_sq - left_sq
    sse = (left_sq - left_sum**2 / k) + (right_sq - right_sum**2 / (n - k))
    sse = np.where(valid, sse, np.inf)
    best = int(np.argmin(sse))
    threshold = 0.5 * (xs[best] + xs[best + 1])
    return float(sse[best]), float(threshold)


def _best_split(
    X_node: np.ndarray, y: np.ndarray, feats: np.ndarray, min_leaf: int
) -> tuple[float, int, float]:
    """Best ``(weighted_sse, feature, threshold)`` over candidate features.

    One vectorised pass: every candidate feature's column is sorted and
    prefix-summed side by side, so a node's whole split search is a handful
    of ``(n, d)`` array ops instead of ``d`` Python-level scans. Column
    ``j`` sees exactly the arithmetic of
    ``_best_split_for_feature(X_node[:, feats[j]], y, min_leaf)`` — same
    stable sort, same prefix sums, same SSE identity — and ties across
    features resolve to the earliest candidate, matching the sequential
    strict-``<`` scan. Returns ``(inf, -1, nan)`` when no feature splits.
    """
    Xf = X_node[:, feats]
    n = Xf.shape[0]
    order = np.argsort(Xf, axis=0, kind="stable")
    xs = np.take_along_axis(Xf, order, axis=0)
    ys = y[order]
    csum = np.cumsum(ys, axis=0)
    csum_sq = np.cumsum(ys * ys, axis=0)
    total, total_sq = csum[-1], csum_sq[-1]
    k = np.arange(1, n)[:, None]
    valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & ((n - k) >= min_leaf)
    left_sum, left_sq = csum[:-1], csum_sq[:-1]
    right_sum, right_sq = total - left_sum, total_sq - left_sq
    sse = (left_sq - left_sum**2 / k) + (right_sq - right_sum**2 / (n - k))
    sse = np.where(valid, sse, np.inf)
    best_rows = np.argmin(sse, axis=0)
    best_vals = sse[best_rows, np.arange(sse.shape[1])]
    # NaN scores (degenerate labels) lose to every finite split, exactly as
    # the sequential scan's strict < comparison skipped them.
    best_vals = np.where(np.isnan(best_vals), np.inf, best_vals)
    j = int(np.argmin(best_vals))
    if not best_vals[j] < np.inf:
        return np.inf, -1, np.nan
    row = int(best_rows[j])
    threshold = 0.5 * (xs[row, j] + xs[row + 1, j])
    return float(best_vals[j]), int(feats[j]), float(threshold)


class DecisionTreeRegressor(Regressor):
    """Binary regression tree grown depth-first with squared-error splits.

    Parameters mirror the scikit-learn names used in Table 4. When
    ``max_features`` is set, each split considers a random feature subset
    (used by :class:`repro.ml.ensemble.RandomForestRegressor`).
    """

    def __init__(
        self,
        max_depth: "int | None" = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: "int | float | None" = None,
        random_state: "int | None" = None,
    ) -> None:
        if max_depth is not None:
            check_positive(max_depth, "max_depth")
        check_positive(min_samples_split, "min_samples_split")
        check_positive(min_samples_leaf, "min_samples_leaf")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: "list[_Node] | None" = None
        self._compiled = None  # flat-array predictor, built lazily (repro.perf)
        self.n_features_: int = 0

    # `coef_`-style fitted marker for _check_fitted
    @property
    def nodes_(self):
        return self._nodes

    def _n_split_features(self, d: int, rng) -> np.ndarray:
        if self.max_features is None:
            return np.arange(d)
        if isinstance(self.max_features, float):
            k = max(1, int(round(self.max_features * d)))
        else:
            k = max(1, min(int(self.max_features), d))
        return rng.choice(d, size=k, replace=False)

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = self._validate_xy(X, y)
        self._compiled = None
        rng = as_generator(self.random_state)
        self.n_features_ = X.shape[1]
        nodes: list[_Node] = []
        max_depth = self.max_depth if self.max_depth is not None else np.inf

        def grow(indices: np.ndarray, depth: int) -> int:
            node_id = len(nodes)
            # One gather per node; the per-feature split search below reuses
            # these views instead of re-slicing X[indices, j] / y[indices]
            # for every candidate feature.
            X_node = X[indices]
            y_node = y[indices]
            node = _Node(value=float(y_node.mean()))
            nodes.append(node)
            n_here = indices.shape[0]
            if (
                depth >= max_depth
                or n_here < self.min_samples_split
                or n_here < 2 * self.min_samples_leaf
                or np.ptp(y_node) == 0.0
            ):
                return node_id
            _, best_feat, best_thr = _best_split(
                X_node, y_node,
                self._n_split_features(self.n_features_, rng),
                self.min_samples_leaf,
            )
            if best_feat < 0:
                return node_id
            mask = X_node[:, best_feat] <= best_thr
            node.feature = best_feat
            node.threshold = best_thr
            node.left = grow(indices[mask], depth + 1)
            node.right = grow(indices[~mask], depth + 1)
            return node_id

        grow(np.arange(X.shape[0]), 0)
        self._nodes = nodes
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("_nodes")
        X = check_2d(X, "X")
        if self._compiled is None:
            from ..perf import compile_tree  # lazy: perf and ml are peers

            self._compiled = compile_tree(self)
        return self._compiled.predict(X)

    def _predict_walk(self, X) -> np.ndarray:
        """Reference object-walk descent (per-sample Python loop).

        Kept as the ground truth the compiled flat-array path is verified
        against (tests/test_perf_compiled.py) and as the "before" arm of the
        benchmark trajectory.
        """
        self._check_fitted("_nodes")
        X = check_2d(X, "X")
        from ..perf.telemetry import record_predict  # lazy: perf and ml are peers

        record_predict("tree", "walk", X.shape[0])
        nodes = self._nodes
        out = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            node = nodes[0]
            while node.feature >= 0:
                node = nodes[node.left if X[i, node.feature] <= node.threshold else node.right]
            out[i] = node.value
        return out

    @property
    def depth_(self) -> int:
        """Realised depth of the fitted tree."""
        self._check_fitted("_nodes")

        def depth_of(nid: int) -> int:
            node = self._nodes[nid]
            if node.feature < 0:
                return 0
            return 1 + max(depth_of(node.left), depth_of(node.right))

        return depth_of(0)

    @property
    def n_leaves_(self) -> int:
        self._check_fitted("_nodes")
        return sum(1 for n in self._nodes if n.feature < 0)
