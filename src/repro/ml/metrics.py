"""Regression metrics used throughout the paper's evaluation (§5.5).

MAPE and RMSE measure relative error, MAE absolute error, and R² model
robustness — exactly the four the paper reports for TRR and SRR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..utils.validation import check_1d, check_consistent_length


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    t = check_1d(y_true, "y_true")
    p = check_1d(y_pred, "y_pred")
    check_consistent_length(t, p, names=("y_true", "y_pred"))
    if t.shape[0] == 0:
        raise ValidationError("metrics need at least one sample")
    return t, p


def mape(y_true, y_pred, eps: float = 1e-12) -> float:
    """Mean absolute percentage error, in percent.

    ``eps`` guards division when a true value is zero (never the case for
    power readings, which have a positive floor, but property tests exercise
    arbitrary series).
    """
    t, p = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(t), eps)
    return float(np.mean(np.abs(t - p) / denom) * 100.0)


def rmse(y_true, y_pred) -> float:
    """Root mean squared error, in the units of the target."""
    t, p = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((t - p) ** 2)))


def mae(y_true, y_pred) -> float:
    """Mean absolute error, in the units of the target."""
    t, p = _pair(y_true, y_pred)
    return float(np.mean(np.abs(t - p)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination. 1.0 is perfect; 0.0 matches the mean.

    For a constant true series the score is 1.0 on an exact match and 0.0
    otherwise (the 0/0 convention scikit-learn uses).
    """
    t, p = _pair(y_true, y_pred)
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class ScoreReport:
    """The paper's four-metric bundle for one prediction task."""

    mape: float
    rmse: float
    mae: float
    r2: float

    def as_row(self) -> tuple[float, float, float]:
        """(MAPE %, RMSE, MAE) — the columns printed in Tables 5–9."""
        return (self.mape, self.rmse, self.mae)

    def __str__(self) -> str:
        return (
            f"MAPE={self.mape:.2f}% RMSE={self.rmse:.2f} "
            f"MAE={self.mae:.2f} R2={self.r2:.3f}"
        )


def score_report(y_true, y_pred) -> ScoreReport:
    """Compute all four paper metrics at once."""
    return ScoreReport(
        mape=mape(y_true, y_pred),
        rmse=rmse(y_true, y_pred),
        mae=mae(y_true, y_pred),
        r2=r2_score(y_true, y_pred),
    )
