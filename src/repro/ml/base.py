"""Estimator contract shared by every model in :mod:`repro.ml`.

Mirrors the parts of the scikit-learn API the paper's protocol actually
uses — ``fit``/``predict``/``get_params``/``set_params`` — so the grid
search and cross-validation in :mod:`repro.ml.model_selection` work with
any model, including the recurrent ones.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

from ..errors import NotFittedError
from ..utils.validation import check_1d, check_2d, check_consistent_length


class Regressor:
    """Base class: parameter introspection + input validation helpers.

    Subclasses implement ``fit`` and ``predict``. Constructor arguments must
    all be stored on ``self`` under the same name (enforced by
    :meth:`get_params`), which is what makes :func:`clone` trivial.
    """

    def get_params(self) -> dict[str, Any]:
        """Constructor parameters, read back from the instance."""
        sig = inspect.signature(type(self).__init__)
        names = [
            p.name
            for p in sig.parameters.values()
            if p.name != "self" and p.kind != p.VAR_KEYWORD
        ]
        missing = [n for n in names if not hasattr(self, n)]
        if missing:
            raise AttributeError(
                f"{type(self).__name__} must store constructor args as "
                f"attributes; missing {missing}"
            )
        return {n: getattr(self, n) for n in names}

    def set_params(self, **params: Any) -> "Regressor":
        valid = self.get_params()
        for key, value in params.items():
            if key not in valid:
                raise ValueError(
                    f"invalid parameter {key!r} for {type(self).__name__}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, key, value)
        return self

    # -- validation helpers -------------------------------------------------
    @staticmethod
    def _validate_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
        X = check_2d(X, "X")
        y = check_1d(y, "y")
        check_consistent_length(X, y, names=("X", "y"))
        return X, y

    def _check_fitted(self, attr: str) -> None:
        if getattr(self, attr, None) is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    # -- sklearn-style conveniences ------------------------------------------
    def fit_predict(self, X, y) -> np.ndarray:
        return self.fit(X, y).predict(X)

    def score(self, X, y) -> float:
        """Coefficient of determination R² on the given data."""
        from .metrics import r2_score

        return r2_score(check_1d(y, "y"), self.predict(X))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: Regressor) -> Regressor:
    """A fresh, unfitted estimator with identical constructor parameters."""
    return type(estimator)(**estimator.get_params())
