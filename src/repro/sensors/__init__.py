"""Measurement substrate: every way power data enters the pipeline.

Emulates the paper's three acquisition paths (§5.2, Fig. 6):

* :class:`IPMISensor` — BMC/IPMI integrated measurement: node-level power
  at one reading per ``miss_interval`` seconds (0.1 Sa/s by default), with
  quantisation, noise, and readout delay;
* :class:`DirectPowerSensor` — the jumper-wire direct measurement used as
  ground truth: per-component power at 1 Sa/s with 0.1 W error;
* :class:`PMCCollector` — the kernel-module counter sampler (occasional
  missed samples, held at the last value);
* :class:`RAPLEmulator` — Intel RAPL energy counters (``energy-pkg`` /
  ``energy-ram``) with microjoule quantisation and 32-bit wraparound, read
  at 1 Sa/s via a perf-like diff (used for the x86 evaluation, Table 9);
* :class:`repro.sensors.hosts.RAPLHostReader` — a best-effort reader of a
  *real* RAPL sysfs tree, so the library runs unchanged on hosts that have
  one (it raises :class:`~repro.errors.SensorUnavailableError` here).
"""

from .base import SparseReadings
from .direct import DirectPowerSensor
from .ipmi import IPMISensor
from .pmc import PMCCollector
from .rapl import RAPLEmulator, RAPLSample

__all__ = [
    "SparseReadings",
    "DirectPowerSensor",
    "IPMISensor",
    "PMCCollector",
    "RAPLEmulator",
    "RAPLSample",
]
