"""Kernel-module PMC collector emulation.

The PMU model already injects counting noise; the collector layer models
*acquisition* faults: occasionally a 1 s sampling tick is missed (the module
lost the race with a frequency transition or an NMI) and the previous
reading is repeated — a hold-last artifact real campaigns exhibit.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..types import PMCTrace, TraceBundle
from ..utils.rng import as_generator


class PMCCollector:
    """Delivers the PMC matrix as the monitoring stack would observe it."""

    def __init__(
        self,
        miss_prob: float = 0.01,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        if not 0.0 <= miss_prob < 1.0:
            raise ValidationError("miss_prob must lie in [0, 1)")
        self.miss_prob = float(miss_prob)
        self._rng = as_generator(seed)

    def collect(self, bundle: TraceBundle) -> PMCTrace:
        """PMC readings with hold-last dropouts applied."""
        matrix = np.array(bundle.pmcs.matrix)  # writable copy
        if self.miss_prob > 0.0 and matrix.shape[0] > 1:
            missed = self._rng.random(matrix.shape[0]) < self.miss_prob
            missed[0] = False
            # Hold-last: propagate the previous row into missed ticks.
            for i in np.flatnonzero(missed):
                matrix[i] = matrix[i - 1]
        return PMCTrace(matrix, bundle.pmcs.events, bundle.pmcs.sample_rate_hz)
