"""Jumper-wire direct measurement emulation.

On the paper's ARM board, the CPU and power supply are cascaded with a
jumper wire so registers 0x8b/0x8c expose per-voltage-domain current at
1 Sa/s with 0.1 W error (§5.2) — an order of magnitude better than the
vendor tools' 1 W. This is the *ground truth* channel used to train and
evaluate SRR; it is explicitly not deployable at scale, which is the whole
reason HighRPM exists.
"""

from __future__ import annotations

import numpy as np

from ..hardware.platform import PlatformSpec
from ..types import PowerTrace, TraceBundle
from ..utils.rng import as_generator


class DirectPowerSensor:
    """Reads component power with small gaussian error at full rate."""

    def __init__(
        self,
        spec: PlatformSpec,
        noise_w: "float | None" = None,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.spec = spec
        self.noise_w = float(noise_w if noise_w is not None else spec.direct_noise_w)
        self._rng = as_generator(seed)

    def _measure(self, trace: PowerTrace) -> PowerTrace:
        noisy = trace.values + self._rng.normal(0.0, self.noise_w, size=len(trace))
        return PowerTrace(np.maximum(noisy, 0.0), trace.sample_rate_hz, trace.label)

    def measure_cpu(self, bundle: TraceBundle) -> PowerTrace:
        """P_CPU at 1 Sa/s with the register-read error."""
        return self._measure(bundle.cpu)

    def measure_mem(self, bundle: TraceBundle) -> PowerTrace:
        """P_MEM at 1 Sa/s with the register-read error."""
        return self._measure(bundle.mem)

    def measure_node(self, bundle: TraceBundle) -> PowerTrace:
        """P_NODE at 1 Sa/s with the register-read error.

        The whole-node ground-truth channel the calibration layer
        (:mod:`repro.calib`) fits IM feeds against: on the calibration
        bench the jumper wire sits on the node supply rail, so node
        power is readable at full rate with the same 0.1 W-class error
        as the per-domain channels.
        """
        return self._measure(bundle.node)

    def measure(self, bundle: TraceBundle) -> tuple[PowerTrace, PowerTrace]:
        """(P_CPU, P_MEM) measured traces."""
        return self.measure_cpu(bundle), self.measure_mem(bundle)
