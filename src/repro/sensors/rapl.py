"""Intel RAPL emulation for the x86 evaluation (Table 9).

RAPL exposes *energy* counters, not power: monotonically increasing
accumulators in integer multiples of the energy unit (2⁻¹⁴ J ≈ 61 µJ on
Sandy Bridge-era parts), wrapping at 32 bits. The paper samples
``/power/energy-pkg/`` and ``/power/energy-ram/`` through perf at 1 s
intervals and differentiates. This emulator reproduces that path exactly —
quantisation, wraparound, and diff — so the x86 pipeline exercises the same
conversion code a real host would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..types import PowerTrace, TraceBundle
from ..utils.rng import as_generator

#: Sandy Bridge-family RAPL energy unit: 1/2^14 joules.
RAPL_ENERGY_UNIT_J = 1.0 / (1 << 14)
#: Counters are 32-bit in the MSR.
RAPL_WRAP = 1 << 32


@dataclass(frozen=True)
class RAPLSample:
    """One perf read: raw counter values (in energy units)."""

    t_s: int
    pkg_counter: int
    ram_counter: int


class RAPLEmulator:
    """Turns ground-truth component power into RAPL counter reads.

    ``read_series`` produces the raw counter sequence; ``power_from_counters``
    converts counter diffs back to watts, handling wraparound — the exact
    transformation a perf-based collector performs.
    """

    def __init__(
        self,
        energy_unit_j: float = RAPL_ENERGY_UNIT_J,
        read_interval_s: int = 1,
        noise_units: float = 2.0,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        if energy_unit_j <= 0:
            raise ValidationError("energy_unit_j must be positive")
        if read_interval_s < 1:
            raise ValidationError("read_interval_s must be >= 1")
        self.energy_unit_j = float(energy_unit_j)
        self.read_interval_s = int(read_interval_s)
        self.noise_units = float(noise_units)
        self._rng = as_generator(seed)

    def read_series(
        self, bundle: TraceBundle, start_pkg: "int | None" = None,
        start_ram: "int | None" = None,
    ) -> list[RAPLSample]:
        """Counter reads at each interval over the bundle's duration.

        Start offsets default to random points in the counter range so
        wraparound actually occurs in long campaigns (as on real hardware,
        where the counter wraps every few minutes under load).
        """
        n = len(bundle)
        pkg0 = int(self._rng.integers(0, RAPL_WRAP)) if start_pkg is None else int(start_pkg)
        ram0 = int(self._rng.integers(0, RAPL_WRAP)) if start_ram is None else int(start_ram)
        # Cumulative true energy in units, plus integer quantisation noise.
        pkg_units = np.cumsum(bundle.cpu.values) / self.energy_unit_j
        ram_units = np.cumsum(bundle.mem.values) / self.energy_unit_j
        samples: list[RAPLSample] = [RAPLSample(0, pkg0 % RAPL_WRAP, ram0 % RAPL_WRAP)]
        for t in range(self.read_interval_s, n + 1, self.read_interval_s):
            jp = self._rng.normal(0.0, self.noise_units)
            jr = self._rng.normal(0.0, self.noise_units)
            pkg = int(pkg0 + pkg_units[t - 1] + jp) % RAPL_WRAP
            ram = int(ram0 + ram_units[t - 1] + jr) % RAPL_WRAP
            samples.append(RAPLSample(t, pkg, ram))
        return samples

    def power_from_counters(
        self, samples: "list[RAPLSample]"
    ) -> tuple[PowerTrace, PowerTrace]:
        """(P_pkg, P_ram) watt traces from consecutive counter diffs."""
        if len(samples) < 2:
            raise ValidationError("need at least two RAPL reads to form power")
        ts = np.array([s.t_s for s in samples], dtype=np.float64)
        if (np.diff(ts) <= 0).any():
            raise ValidationError("RAPL sample timestamps must increase")
        pkg = np.array([s.pkg_counter for s in samples], dtype=np.float64)
        ram = np.array([s.ram_counter for s in samples], dtype=np.float64)
        dt = np.diff(ts)

        def to_power(counter: np.ndarray) -> np.ndarray:
            d = np.diff(counter)
            d = np.where(d < 0, d + RAPL_WRAP, d)  # unwrap
            return d * self.energy_unit_j / dt

        rate = 1.0 / self.read_interval_s
        return (
            PowerTrace(np.maximum(to_power(pkg), 0.0), rate, "rapl-pkg"),
            PowerTrace(np.maximum(to_power(ram), 0.0), rate, "rapl-ram"),
        )

    def measure(self, bundle: TraceBundle) -> tuple[PowerTrace, PowerTrace]:
        """End-to-end: counters then diff, like a perf sampling loop."""
        return self.power_from_counters(self.read_series(bundle))
