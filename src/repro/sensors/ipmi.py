"""IPMI/BMC integrated-measurement emulation.

GIM solutions read node power through the BMC at ≥10 s intervals (§2.2).
This sensor models the three error sources the paper attributes to them:

* **low rate** — one reading per ``interval_s`` (default: the platform's
  ``ipmi_interval_s``, i.e. 0.1 Sa/s);
* **readout delay** — the value returned at time t is the power-chip
  accumulator from ``delay_s`` earlier;
* **coarse reporting** — vendor tools quantise to ~1 W and carry ~0.4 W of
  chain noise.

Optionally, ``jitter_prob`` drops individual readings (network congestion,
the §6.4.6 failure mode) so robustness tests can exercise ragged intervals.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..hardware.platform import PlatformSpec
from ..types import TraceBundle
from ..utils.rng import as_generator
from ..utils.validation import check_positive
from .base import SparseReadings


class IPMISensor:
    """Samples node power from a ground-truth bundle the way a BMC would."""

    def __init__(
        self,
        spec: PlatformSpec,
        interval_s: "int | None" = None,
        noise_w: "float | None" = None,
        quantum_w: "float | None" = None,
        delay_s: int = 1,
        jitter_prob: float = 0.0,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.spec = spec
        self.interval_s = int(interval_s if interval_s is not None else spec.ipmi_interval_s)
        check_positive(self.interval_s, "interval_s")
        self.noise_w = float(noise_w if noise_w is not None else spec.ipmi_noise_w)
        self.quantum_w = float(quantum_w if quantum_w is not None else spec.ipmi_quantum_w)
        self.delay_s = int(delay_s)
        if self.delay_s < 0:
            raise ValidationError("delay_s must be >= 0")
        if not 0.0 <= jitter_prob < 1.0:
            raise ValidationError("jitter_prob must lie in [0, 1)")
        self.jitter_prob = float(jitter_prob)
        self._rng = as_generator(seed)

    @property
    def sample_rate_sa_s(self) -> float:
        """Nominal rate in samples per second (0.1 Sa/s at interval 10)."""
        return 1.0 / self.interval_s

    def sample(self, bundle: TraceBundle, offset: int = 0) -> SparseReadings:
        """Produce the sparse node-power readings for one run."""
        n = len(bundle)
        if n <= self.delay_s:
            raise ValidationError(
                f"trace of {n} samples is shorter than the readout delay"
            )
        indices = np.arange(offset, n, self.interval_s, dtype=np.int64)
        indices = indices[indices >= self.delay_s]
        if indices.size == 0:
            raise ValidationError(
                "no IPMI readings fall inside the trace; lengthen the run"
            )
        if self.jitter_prob > 0.0:
            keep = self._rng.random(indices.shape) >= self.jitter_prob
            keep[0] = True  # never lose the first reading
            indices = indices[keep]
        # Readout delay: the BMC reports the accumulator from delay_s ago.
        true_vals = bundle.node.values[indices - self.delay_s]
        vals = true_vals + self._rng.normal(0.0, self.noise_w, size=true_vals.shape)
        if self.quantum_w > 0:
            vals = np.round(vals / self.quantum_w) * self.quantum_w
        vals = np.maximum(vals, 0.0)
        return SparseReadings(indices=indices, values=vals, interval_s=self.interval_s, n_dense=n)
