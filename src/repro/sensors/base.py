"""Shared sensor types."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError


@dataclass(frozen=True)
class SparseReadings:
    """Low-rate sensor output aligned to a dense 1 Sa/s timebase.

    ``indices[k]`` is the dense-sample index at which ``values[k]`` became
    available; ``interval_s`` is the nominal spacing (the paper's
    ``miss_interval``); ``n_dense`` the length of the underlying dense trace.
    """

    indices: np.ndarray
    values: np.ndarray
    interval_s: int
    n_dense: int

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=np.int64)
        vals = np.asarray(self.values, dtype=np.float64)
        if idx.ndim != 1 or vals.ndim != 1 or idx.shape != vals.shape:
            raise ValidationError("indices and values must be equal-length 1-D")
        if idx.shape[0] == 0:
            raise ValidationError("sparse readings cannot be empty")
        if (np.diff(idx) <= 0).any():
            raise ValidationError("indices must be strictly increasing")
        if idx[0] < 0 or idx[-1] >= self.n_dense:
            raise ValidationError("indices out of range for n_dense")
        object.__setattr__(self, "indices", idx)
        object.__setattr__(self, "values", vals)

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    @property
    def times_s(self) -> np.ndarray:
        """Reading timestamps in seconds (dense timebase is 1 Sa/s)."""
        return self.indices.astype(np.float64)

    def coverage_mask(self) -> np.ndarray:
        """Boolean mask over the dense timebase: True where a reading exists."""
        mask = np.zeros(self.n_dense, dtype=bool)
        mask[self.indices] = True
        return mask
