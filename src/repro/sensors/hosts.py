"""Best-effort readers for *real* measurement hosts.

When the library runs on a machine that actually has RAPL (the repro band
notes the paper "needs a RAPL/perf-counter host"), these readers let the
same pipeline consume real data. On hosts without the sysfs tree — like the
container this reproduction was built in — they raise
:class:`~repro.errors.SensorUnavailableError` and callers fall back to the
emulators.
"""

from __future__ import annotations

import os
import time

from ..errors import SensorUnavailableError

RAPL_SYSFS_ROOT = "/sys/class/powercap"


def rapl_available(root: str = RAPL_SYSFS_ROOT) -> bool:
    """True when an intel-rapl powercap tree exists and is readable."""
    try:
        entries = os.listdir(root)
    except OSError:
        return False
    return any(e.startswith("intel-rapl") for e in entries)


class RAPLHostReader:
    """Reads package/DRAM energy from the powercap sysfs interface.

    Each domain exposes ``energy_uj`` (microjoules, wrapping at
    ``max_energy_range_uj``). ``read_power_w`` takes two reads ``dt`` apart
    and differentiates, exactly like the emulator's conversion.
    """

    def __init__(self, root: str = RAPL_SYSFS_ROOT) -> None:
        if not rapl_available(root):
            raise SensorUnavailableError(
                f"no intel-rapl domains under {root!r}; use RAPLEmulator instead"
            )
        self.root = root
        self._domains = self._discover()

    def _discover(self) -> dict[str, str]:
        domains: dict[str, str] = {}
        for entry in sorted(os.listdir(self.root)):
            if not entry.startswith("intel-rapl:"):
                continue
            path = os.path.join(self.root, entry)
            name_file = os.path.join(path, "name")
            try:
                with open(name_file) as fh:
                    name = fh.read().strip()
            except OSError:
                continue
            domains[name] = path
        if not domains:
            raise SensorUnavailableError("intel-rapl tree present but unreadable")
        return domains

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(self._domains)

    def read_energy_uj(self, domain: str) -> int:
        try:
            path = self._domains[domain]
        except KeyError:
            raise SensorUnavailableError(
                f"no RAPL domain {domain!r}; have {sorted(self._domains)}"
            ) from None
        try:
            with open(os.path.join(path, "energy_uj")) as fh:
                return int(fh.read().strip())
        except (OSError, ValueError) as exc:
            raise SensorUnavailableError(f"failed reading {domain}: {exc}") from exc

    def read_power_w(self, domain: str, dt_s: float = 1.0) -> float:
        """Average power over a ``dt_s`` window (blocks for that long)."""
        e0 = self.read_energy_uj(domain)
        time.sleep(dt_s)
        e1 = self.read_energy_uj(domain)
        if e1 < e0:  # wrapped
            max_path = os.path.join(self._domains[domain], "max_energy_range_uj")
            try:
                with open(max_path) as fh:
                    e1 += int(fh.read().strip())
            except (OSError, ValueError):
                return 0.0
        return (e1 - e0) / 1e6 / dt_s
