"""The HighRPM facade: initial learning, active learning, monitoring.

Typical use::

    cfg = HighRPMConfig(miss_interval=10)
    hr = HighRPM(cfg, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)
    hr.fit_initial(train_bundles)            # instrumented campaign
    hr.active_learning([(pmcs, readings)])   # unlabeled runs on the target node
    result = hr.monitor_online(pmcs, readings)
    result.p_node, result.p_cpu, result.p_mem    # dense 1 Sa/s estimates

``monitor_offline`` uses StaticTRR (historical log analysis);
``monitor_online`` uses DynamicTRR (live prediction). Both then distribute
the restored node power to components with SRR.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..sensors.base import SparseReadings
from ..types import TraceBundle
from ..utils.validation import check_2d
from .active_learning import ReinforcementSampler, SamplePool
from .config import HighRPMConfig
from .dataset import build_flat_dataset
from .dynamic_trr import DynamicTRR, OnlineTRRSession
from .srr import SRR
from .static_trr import StaticTRR, StaticTRRStream


#: Per-sample provenance codes: the estimate is a direct IM measurement, a
#: TRR restoration anchored by nearby readings, or a pure model forecast
#: produced with no usable reading in reach (IM outage).
PROV_MEASURED = np.uint8(0)
PROV_RESTORED = np.uint8(1)
PROV_MODEL_ONLY = np.uint8(2)

#: Confidence attached to each provenance class (measurements are trusted,
#: restorations are the paper's validated operating point, unanchored
#: forecasts drift with outage length).
PROVENANCE_CONFIDENCE = {
    int(PROV_MEASURED): 1.0,
    int(PROV_RESTORED): 0.8,
    int(PROV_MODEL_ONLY): 0.4,
}


def provenance_from_readings(
    n: int,
    readings: SparseReadings,
    interval_s: "int | None" = None,
    outage_factor: float = 2.0,
    start: int = 0,
    stop: "int | None" = None,
) -> np.ndarray:
    """Per-sample provenance codes for a restoration over ``readings``.

    A sample is ``PROV_MEASURED`` at a reading instant, ``PROV_RESTORED``
    when the nearest reading is within ``outage_factor · interval_s``
    seconds (normal restoration reach), and ``PROV_MODEL_ONLY`` beyond that
    — inside an outage the estimator is extrapolating without an anchor.

    ``start``/``stop`` restrict the output to the sample span ``[start,
    stop)`` of the ``n``-sample trace (chunked callers); per-sample values
    are identical to slicing the whole-trace result.
    """
    interval = int(readings.interval_s if interval_s is None else interval_s)
    stop = n if stop is None else int(stop)
    idx = readings.indices
    t = np.arange(start, stop, dtype=np.int64)
    far = np.int64(n + 1)
    # One searchsorted serves both neighbour distances: left/right insertion
    # points only differ at exact reading instants, whose provenance is
    # overwritten with PROV_MEASURED below anyway (prev_dist is 0 there, so
    # the nearest-reading distance is unchanged too).
    pos = idx.searchsorted(t, side="right")
    prev_dist = np.where(pos > 0, t - idx[np.maximum(pos - 1, 0)], far)
    next_dist = np.where(pos < idx.size, idx[np.minimum(pos, idx.size - 1)] - t, far)
    nearest = np.minimum(prev_dist, next_dist)
    prov = np.full(stop - start, PROV_RESTORED)
    prov[nearest > outage_factor * interval] = PROV_MODEL_ONLY
    sel = idx.searchsorted(np.array((start, stop)), side="left")
    measured = idx[sel[0]:sel[1]]
    prov[measured - start] = PROV_MEASURED
    return prov


@dataclass(frozen=True)
class MonitorResult:
    """Dense restored power estimates for one run."""

    p_node: np.ndarray
    p_cpu: np.ndarray
    p_mem: np.ndarray
    mode: str  # "static", "dynamic", or "model_only"
    #: Per-sample provenance codes (``PROV_*``); None for legacy callers.
    provenance: "np.ndarray | None" = None
    #: Accelerator component power; None on CPU-only device classes.
    p_gpu: "np.ndarray | None" = None

    def __len__(self) -> int:
        return int(self.p_node.shape[0])

    @property
    def components(self) -> "dict[str, np.ndarray]":
        """Attributed component channels present on this result."""
        out = {"cpu": self.p_cpu, "mem": self.p_mem}
        if self.p_gpu is not None:
            out["gpu"] = self.p_gpu
        return out

    @property
    def p_other(self) -> np.ndarray:
        """Residual peripheral power implied by the estimates."""
        rest = self.p_node - self.p_cpu - self.p_mem
        if self.p_gpu is not None:
            rest = rest - self.p_gpu
        return rest

    @property
    def model_only_mask(self) -> np.ndarray:
        """True where the estimate ran without a usable IM anchor."""
        if self.provenance is None:
            return np.zeros(len(self), dtype=bool)
        return self.provenance == PROV_MODEL_ONLY

    def confidence(self) -> np.ndarray:
        """Per-sample confidence in [0, 1] derived from provenance."""
        if self.provenance is None:
            return np.full(len(self), PROVENANCE_CONFIDENCE[int(PROV_RESTORED)])
        out = np.empty(len(self), dtype=np.float64)
        for code, conf in PROVENANCE_CONFIDENCE.items():
            out[self.provenance == code] = conf
        return out


class HighRPM:
    """Temporal + spatial resolution restoration framework."""

    def __init__(
        self,
        config: "HighRPMConfig | None" = None,
        p_bottom: "float | None" = None,
        p_upper: "float | None" = None,
    ) -> None:
        self.config = config or HighRPMConfig()
        self.p_bottom = p_bottom
        self.p_upper = p_upper
        self.dynamic_trr = DynamicTRR(self.config)
        self.srr = SRR(self.config)
        self._initial_pool: "SamplePool | None" = None
        self._fitted = False

    def set_fast_math(self, flag: bool) -> "HighRPM":
        """Switch the inference tier (see ``HighRPMConfig.fast_math``).

        ``True`` routes the compiled kernels (SRR MLP forward, DynamicTRR
        segment forecaster) through BLAS ``matmul``; results then match the
        exact tier only within :data:`repro.perf.FAST_MATH_RTOL` /
        ``FAST_MATH_ATOL``. The config is frozen, so the switch installs a
        replaced config on this model and its sub-models; kernels built
        afterwards pick up the tier, and an already-compiled SRR forward is
        re-flagged in place. Online sessions opened *before* the switch
        keep the tier they were opened under.
        """
        flag = bool(flag)
        if flag != self.config.fast_math:
            cfg = replace(self.config, fast_math=flag)
            self.config = cfg
            self.dynamic_trr.config = cfg
            self.srr.config = cfg
        compiled = getattr(self.srr.model_, "_compiled", None)
        if compiled is not None and hasattr(compiled, "fast_math"):
            compiled.fast_math = flag
        return self

    # ---------------------------------------------------------------- stage 1
    def fit_initial(self, bundles: Sequence[TraceBundle]) -> "HighRPM":
        """Initial learning stage: train TRR and SRR on instrumented runs."""
        if not bundles:
            raise ValidationError("fit_initial needs at least one bundle")
        flat = build_flat_dataset(bundles)
        self.dynamic_trr.fit(bundles, p_bottom=self.p_bottom, p_upper=self.p_upper)
        self.srr.fit(flat.X, flat.p_node, flat.p_cpu, flat.p_mem)
        self._initial_pool = SamplePool(
            pmcs=flat.X,
            p_node=flat.p_node,
            p_cpu=flat.p_cpu,
            p_mem=flat.p_mem,
            restored=np.zeros(len(flat), dtype=bool),
        )
        self._fitted = True
        return self

    # ---------------------------------------------------------------- stage 2
    def active_learning(
        self,
        unlabeled: Sequence[tuple[np.ndarray, SparseReadings]],
        rounds: "int | None" = None,
    ) -> "HighRPM":
        """Active learning: restore unlabeled runs, fine-tune on a mix.

        ``unlabeled`` holds (pmc_matrix, sparse IM readings) pairs from the
        deployment node. StaticTRR pseudo-labels the node power; the current
        SRR pseudo-labels the components; a sampler draws reinforcement
        batches; SRR is fine-tuned on each.
        """
        self._require_fitted()
        if not unlabeled:
            return self
        restored_parts: list[SamplePool] = []
        for pmcs, readings in unlabeled:
            pmcs = check_2d(pmcs, "pmcs")
            static = StaticTRR(
                self.config, p_upper=self.p_upper, p_bottom=self.p_bottom
            )
            p_node = static.fit_restore(pmcs, readings).p_trr
            p_cpu, p_mem = self.srr.predict(pmcs, p_node)
            restored_parts.append(
                SamplePool(
                    pmcs=pmcs,
                    p_node=p_node,
                    p_cpu=p_cpu,
                    p_mem=p_mem,
                    restored=np.ones(p_node.shape[0], dtype=bool),
                )
            )
        pool = self._initial_pool
        for part in restored_parts:
            pool = SamplePool.merge(pool, part)
        sampler = ReinforcementSampler(
            fraction=self.config.reinforcement_fraction,
            rng=self.config.seed,
        )
        n_rounds = self.config.active_rounds if rounds is None else int(rounds)
        for _ in range(n_rounds):
            batch = sampler.draw(pool)
            self.srr.partial_fit(
                batch.pmcs, batch.p_node, batch.p_cpu, batch.p_mem, n_steps=200
            )
        return self

    # -------------------------------------------------------------- monitoring
    def monitor_offline(
        self, pmcs: np.ndarray, readings: SparseReadings
    ) -> MonitorResult:
        """Historical-log analysis: StaticTRR + SRR."""
        self._require_fitted()
        pmcs = check_2d(pmcs, "pmcs")
        static = StaticTRR(self.config, p_upper=self.p_upper, p_bottom=self.p_bottom)
        p_node = static.fit_restore(pmcs, readings).p_trr
        p_cpu, p_mem = self.srr.predict(pmcs, p_node)
        return MonitorResult(
            p_node=p_node, p_cpu=p_cpu, p_mem=p_mem, mode="static",
            provenance=self._provenance(pmcs.shape[0], readings),
        )

    def monitor_online(
        self, pmcs: np.ndarray, readings: SparseReadings
    ) -> MonitorResult:
        """Live monitoring: DynamicTRR session + SRR."""
        self._require_fitted()
        pmcs = check_2d(pmcs, "pmcs")
        p_node = self.dynamic_trr.restore(pmcs, readings)
        p_cpu, p_mem = self.srr.predict(pmcs, p_node)
        return MonitorResult(
            p_node=p_node, p_cpu=p_cpu, p_mem=p_mem, mode="dynamic",
            provenance=self._provenance(pmcs.shape[0], readings),
        )

    def monitor_model_only(self, pmcs: np.ndarray) -> MonitorResult:
        """Degraded monitoring with no IM feed at all (full outage).

        DynamicTRR runs an anchorless session: the hold channel starts at
        the training-campaign power level and the LSTM projects deviations
        forward, clamped to the physical power range. Accuracy degrades
        with outage length — every sample is flagged ``PROV_MODEL_ONLY``.
        """
        self._require_fitted()
        pmcs = check_2d(pmcs, "pmcs")
        p_node = self.dynamic_trr.restore(pmcs, readings=None)
        p_cpu, p_mem = self.srr.predict(pmcs, p_node)
        return MonitorResult(
            p_node=p_node, p_cpu=p_cpu, p_mem=p_mem, mode="model_only",
            provenance=np.full(pmcs.shape[0], PROV_MODEL_ONLY, dtype=np.uint8),
        )

    # ------------------------------------------------------------- streaming
    def offline_stream(
        self, pmcs_rows: np.ndarray, readings: SparseReadings
    ) -> "StaticTRRStream":
        """Fit a per-run StaticTRR and return its bounded-memory stream.

        ``pmcs_rows`` are the PMC rows at the reading instants only —
        streaming callers never need the dense matrix up front. Chunk
        outputs concatenate bit-identically to :meth:`monitor_offline`'s
        ``p_node``.
        """
        self._require_fitted()
        pmcs_rows = check_2d(pmcs_rows, "pmcs_rows")
        static = StaticTRR(self.config, p_upper=self.p_upper, p_bottom=self.p_bottom)
        return static.fit_stream(pmcs_rows, readings)

    def online_session(self, retain: bool = False) -> "OnlineTRRSession":
        """A fresh bounded-memory DynamicTRR session for chunked feeding."""
        self._require_fitted()
        return self.dynamic_trr.session(retain=retain)

    def monitor_stream(
        self,
        pmcs: np.ndarray,
        readings: "SparseReadings | None",
        online: bool = True,
        chunk_size: int = 256,
    ):
        """Restore a run incrementally in fixed-size chunks (bounded state).

        A generator of ``(start, MonitorResult)`` pieces in trace order.
        ``readings=None`` selects model-only mode. The static path's output
        chunks lag its input chunks by half a miss-interval (Algorithm-1
        holds reach that far back), so pieces are not aligned with the
        ``chunk_size`` grid — but they tile ``[0, n)`` exactly, and their
        concatenation is bit-identical to the matching whole-run
        ``monitor_online`` / ``monitor_offline`` / ``monitor_model_only``
        call.
        """
        self._require_fitted()
        pmcs = check_2d(pmcs, "pmcs")
        n = pmcs.shape[0]
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        if readings is not None and readings.n_dense != n:
            raise ValidationError(
                f"readings cover {readings.n_dense} samples but pmcs has {n}"
            )
        if readings is not None and not online:
            stream = self.offline_stream(pmcs[readings.indices], readings)
            for start in range(0, n, chunk_size):
                out_start, part = stream.restore_chunk(pmcs[start:start + chunk_size])
                piece = self._stream_piece(pmcs, readings, out_start, part, "static")
                if piece is not None:
                    yield piece
            out_start, part = stream.finish()
            piece = self._stream_piece(pmcs, readings, out_start, part, "static")
            if piece is not None:
                yield piece
            return
        mode = "dynamic" if readings is not None else "model_only"
        session = self.dynamic_trr.session(retain=False)
        for start in range(0, n, chunk_size):
            p_node = session.run_chunk(pmcs[start:start + chunk_size], readings)
            piece = self._stream_piece(pmcs, readings, start, p_node, mode)
            if piece is not None:
                yield piece

    def _stream_piece(self, pmcs, readings, start, p_node, mode):
        """SRR + provenance for one finalised span; None when it is empty."""
        if p_node.shape[0] == 0:
            return None
        stop = start + p_node.shape[0]
        p_cpu, p_mem = self.srr.predict(pmcs[start:stop], p_node)
        if mode == "model_only":
            prov = np.full(stop - start, PROV_MODEL_ONLY, dtype=np.uint8)
        else:
            prov = provenance_from_readings(
                pmcs.shape[0], readings,
                outage_factor=self.config.resync_gap_factor,
                start=start, stop=stop,
            )
        return start, MonitorResult(
            p_node=p_node, p_cpu=p_cpu, p_mem=p_mem, mode=mode, provenance=prov
        )

    def _provenance(self, n: int, readings: SparseReadings) -> np.ndarray:
        # The readings carry their own nominal spacing (a sensor configured
        # at 30 s is not "in outage" between its regular ticks).
        return provenance_from_readings(
            n, readings, outage_factor=self.config.resync_gap_factor
        )

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("HighRPM: call fit_initial first")
