"""SRR: spatial-resolution restoration (paper §4.3).

A shallow MLP *distributes* node power to components — the bi-directional
workflow of Fig. 5(c). Concretely:

* the component budget is ``P_node − P_other`` where the peripheral draw
  ``P_other`` is learned as a constant at fit time (§5.2 fixes it at ~25 W
  and observes < 1 W variation);
* the MLP maps ``(P_node, PMCs) → s``, the CPU share of that budget, and
  the predictions are ``P_CPU = s·budget``, ``P_MEM = (1−s)·budget``.

Tying the component sum to the measured node reading is exactly what the
paper's unidirectional baselines cannot do, and it is where the Table-7/8
gap comes from. With ``use_pnode=False`` (the Table-8 ablation) no budget
exists, so the model degrades to a plain two-output PMC regression — the
same class as the baselines.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..ml.neural import MLPRegressor
from ..obs import current_tracer
from ..utils.validation import check_1d, check_2d, check_consistent_length
from .config import HighRPMConfig


class SRR:
    """Node-to-component power distribution model.

    Parameters
    ----------
    config:
        Framework configuration (hidden width, training budget, seed).
    use_pnode:
        When False, the node-power feature and the budget constraint are
        dropped — the Table-8 ablation arm.
    """

    def __init__(
        self, config: "HighRPMConfig | None" = None, use_pnode: bool = True
    ) -> None:
        self.config = config or HighRPMConfig()
        self.use_pnode = bool(use_pnode)
        self.model_: "MLPRegressor | None" = None
        self.other_w_: float = 0.0
        self.n_pmcs_: int = 0

    # ------------------------------------------------------------------ utils
    def _check_inputs(self, pmcs, p_node):
        pmcs = check_2d(pmcs, "pmcs")
        if self.use_pnode:
            if p_node is None:
                raise ValidationError(
                    "this SRR was built with use_pnode=True; pass p_node"
                )
            p_node = check_1d(p_node, "p_node")
            check_consistent_length(pmcs, p_node, names=("pmcs", "p_node"))
        return pmcs, p_node

    @staticmethod
    def _logit(s: np.ndarray) -> np.ndarray:
        s = np.clip(s, 1e-4, 1.0 - 1e-4)
        return np.log(s / (1.0 - s))

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    # -------------------------------------------------------------------- fit
    def fit(self, pmcs: np.ndarray, p_node: np.ndarray, p_cpu: np.ndarray,
            p_mem: np.ndarray) -> "SRR":
        """Train on an instrumented campaign (direct-measurement labels)."""
        pmcs, p_node_checked = self._check_inputs(
            pmcs, p_node if self.use_pnode else None
        )
        p_node = check_1d(p_node, "p_node")
        p_cpu = check_1d(p_cpu, "p_cpu")
        p_mem = check_1d(p_mem, "p_mem")
        check_consistent_length(pmcs, p_node, p_cpu, p_mem,
                                names=("pmcs", "p_node", "p_cpu", "p_mem"))
        self.n_pmcs_ = pmcs.shape[1]
        cfg = self.config
        self.model_ = MLPRegressor(
            hidden_layer_sizes=cfg.srr_hidden,
            max_iter=cfg.srr_iters,
            random_state=cfg.seed,
        )
        if self.use_pnode:
            self.other_w_ = float(np.median(p_node - p_cpu - p_mem))
            X = np.column_stack([p_node, pmcs])
            share = p_cpu / np.maximum(p_cpu + p_mem, 1e-9)
            self.model_.fit(X, self._logit(share))
        else:
            self.model_.fit(pmcs, np.column_stack([p_cpu, p_mem]))
        return self

    def partial_fit(self, pmcs, p_node, p_cpu, p_mem, n_steps: int = 200) -> "SRR":
        """Fine-tune with reinforcement samples (active-learning stage)."""
        if self.model_ is None:
            raise NotFittedError("SRR.partial_fit before fit")
        p_cpu = check_1d(p_cpu, "p_cpu")
        p_mem = check_1d(p_mem, "p_mem")
        if self.use_pnode:
            p_node = check_1d(p_node, "p_node")
            X = np.column_stack([p_node, check_2d(pmcs, "pmcs")])
            share = p_cpu / np.maximum(p_cpu + p_mem, 1e-9)
            self.model_.partial_fit(X, self._logit(share), n_steps=n_steps)
        else:
            self.model_.partial_fit(
                check_2d(pmcs, "pmcs"), np.column_stack([p_cpu, p_mem]),
                n_steps=n_steps,
            )
        return self

    # ---------------------------------------------------------------- predict
    def predict(
        self, pmcs: np.ndarray, p_node: "np.ndarray | None" = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(P_CPU, P_MEM) estimates.

        With the budget constraint active, estimates always sum to
        ``p_node − other_w_`` — the restored node reading is *distributed*,
        never contradicted.
        """
        if self.model_ is None:
            raise NotFittedError("SRR.predict before fit")
        pmcs, p_node = self._check_inputs(pmcs, p_node)
        with current_tracer().span("srr.split"):
            if self.use_pnode:
                X = np.column_stack([p_node, pmcs])
                share = self._sigmoid(self.model_.predict(X))
                budget = np.maximum(p_node - self.other_w_, 0.0)
                return share * budget, (1.0 - share) * budget
            out = self.model_.predict(pmcs)
            return np.maximum(out[:, 0], 0.0), np.maximum(out[:, 1], 0.0)

    def predict_batched(
        self, parts: "list[tuple[np.ndarray, np.ndarray | None]]"
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """(P_CPU, P_MEM) for many runs' chunks in one forward pass.

        ``parts`` holds ``(pmcs, p_node)`` pairs, one per pending chunk (a
        fleet tick batches one chunk per node). The concatenated MLP
        forward amortizes per-call overhead across the fleet; per-part
        outputs are bit-identical to calling :meth:`predict` on each part
        (the compiled forward is batch-size independent).
        """
        if self.model_ is None:
            raise NotFittedError("SRR.predict before fit")
        checked = [self._check_inputs(pmcs, p_node) for pmcs, p_node in parts]
        if not checked:
            return []
        sizes = [pmcs.shape[0] for pmcs, _ in checked]
        bounds = np.cumsum(sizes)[:-1]
        with current_tracer().span("srr.split"):
            if self.use_pnode:
                # One preallocated design matrix instead of a column_stack
                # plus concatenate per part — same values, one allocation.
                X = np.empty((int(sum(sizes)), checked[0][0].shape[1] + 1))
                ofs = 0
                for (pmcs, p_node), k in zip(checked, sizes):
                    X[ofs:ofs + k, 0] = p_node
                    X[ofs:ofs + k, 1:] = pmcs
                    ofs += k
                shares = np.split(self._sigmoid(self.model_.predict(X)), bounds)
                out = []
                for (_, p_node), share in zip(checked, shares):
                    budget = np.maximum(p_node - self.other_w_, 0.0)
                    out.append((share * budget, (1.0 - share) * budget))
                return out
            raw = self.model_.predict(np.concatenate([pmcs for pmcs, _ in checked]))
            return [
                (np.maximum(r[:, 0], 0.0), np.maximum(r[:, 1], 0.0))
                for r in np.split(raw, bounds)
            ]
