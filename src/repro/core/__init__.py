"""HighRPM — the paper's contribution.

Three models and a facade:

* :class:`StaticTRR` — offline temporal-resolution restoration: natural
  cubic spline over the sparse IM readings (long-term trend) + a
  decision-tree residual model over PMCs (short-term fluctuations) + the
  Algorithm-1 post-processing fusion;
* :class:`DynamicTRR` — online restoration: a compact two-layer LSTM over
  sliding windows of ``(PMCs, P'_node)``, fine-tuned whenever a real IM
  reading arrives;
* :class:`SRR` — spatial-resolution restoration: a shallow MLP distributing
  node power to ``(P_CPU, P_MEM)`` using PMCs *and* the node reading — the
  bi-directional workflow of Fig. 5(c);
* :class:`HighRPM` — the full framework with its initial-learning and
  active-learning stages (Fig. 3).
"""

from .config import HighRPMConfig
from .dataset import FlatDataset, build_flat_dataset, build_windows
from .dynamic_trr import DynamicTRR, OnlineTRRSession
from .highrpm import (
    PROV_MEASURED,
    PROV_MODEL_ONLY,
    PROV_RESTORED,
    HighRPM,
    MonitorResult,
    provenance_from_readings,
)
from .srr import SRR
from .static_trr import StaticTRR, StaticTRRResult, StaticTRRStream
from .uncertainty import DynamicTRREnsemble, UncertainRestoration

__all__ = [
    "HighRPMConfig",
    "FlatDataset",
    "build_flat_dataset",
    "build_windows",
    "StaticTRR",
    "StaticTRRResult",
    "StaticTRRStream",
    "DynamicTRR",
    "OnlineTRRSession",
    "SRR",
    "HighRPM",
    "MonitorResult",
    "PROV_MEASURED",
    "PROV_RESTORED",
    "PROV_MODEL_ONLY",
    "provenance_from_readings",
    "DynamicTRREnsemble",
    "UncertainRestoration",
]
