"""Dataset builders for TRR and SRR (paper §4.2.2, Fig. 4).

Two shapes circulate:

* **flat** rows ``[C_1 … C_m]`` (PMCs) with a power target — what the
  Table-4 baselines and the SRR model consume;
* **windows** of ``miss_interval`` consecutive rows ``[C_1 … C_m, P'_node]``
  with per-step power labels — what DynamicTRR's LSTM consumes. The extra
  feature column is the node power of the *previous* step (teacher-forced
  from ground truth at training time; the model's own prediction or a real
  IM reading online).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ValidationError
from ..types import TraceBundle
from ..utils.validation import check_consistent_length


@dataclass(frozen=True)
class FlatDataset:
    """PMC features plus the three power channels, row-aligned."""

    X: np.ndarray  # (n, m) PMC matrix
    p_node: np.ndarray
    p_cpu: np.ndarray
    p_mem: np.ndarray
    workloads: tuple[str, ...]  # per-row provenance

    def __post_init__(self) -> None:
        check_consistent_length(
            self.X, self.p_node, self.p_cpu, self.p_mem,
            names=("X", "p_node", "p_cpu", "p_mem"),
        )
        if len(self.workloads) != self.X.shape[0]:
            raise ValidationError("workloads must label every row")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def subset(self, mask: np.ndarray) -> "FlatDataset":
        mask = np.asarray(mask)
        if mask.dtype == bool:
            # A boolean mask must label every row; integer index arrays may
            # be any length (they select with repetition).
            check_consistent_length(self.X, mask, names=("X", "mask"))
        return FlatDataset(
            X=self.X[mask],
            p_node=self.p_node[mask],
            p_cpu=self.p_cpu[mask],
            p_mem=self.p_mem[mask],
            workloads=tuple(np.asarray(self.workloads, dtype=object)[mask]),
        )

    def limit(self, n: int) -> "FlatDataset":
        """First ``n`` rows (the paper draws 1000 samples per suite set)."""
        mask = np.zeros(len(self), dtype=bool)
        mask[:n] = True
        return self.subset(mask)


def build_flat_dataset(bundles: Sequence[TraceBundle]) -> FlatDataset:
    """Stack measurement bundles into one flat dataset."""
    if not bundles:
        raise ValidationError("need at least one bundle")
    X = np.vstack([b.pmcs.matrix for b in bundles])
    return FlatDataset(
        X=X,
        p_node=np.concatenate([b.node.values for b in bundles]),
        p_cpu=np.concatenate([b.cpu.values for b in bundles]),
        p_mem=np.concatenate([b.mem.values for b in bundles]),
        workloads=tuple(
            name for b in bundles for name in [b.workload] * len(b)
        ),
    )


def build_windows(
    pmcs: np.ndarray,
    p_node: np.ndarray,
    miss_interval: int,
    stride: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig.-4 window construction for DynamicTRR training.

    Returns ``(X_seq, Y_seq)``:

    * ``X_seq``: ``(k, miss_interval, m+1)`` — each step's features are its
      PMCs plus the node power of the *previous* step (the first step of a
      window uses the power just before the window; the leading window is
      seeded with its own first power reading, the only sane cold-start);
    * ``Y_seq``: ``(k, miss_interval)`` — true node power at each step,
      i.e. the label vector ``<P(i), …, P(i+miss-1)>``.

    ``k = floor((n - miss_interval) / stride) + 1``.
    """
    pmcs = np.asarray(pmcs, dtype=np.float64)
    p = np.asarray(p_node, dtype=np.float64)
    if pmcs.ndim != 2:
        raise ValidationError(f"pmcs must be 2-D, got {pmcs.shape}")
    check_consistent_length(pmcs, p, names=("pmcs", "p_node"))
    n, m = pmcs.shape
    w = int(miss_interval)
    if w < 2:
        raise ValidationError("miss_interval must be >= 2")
    if n < w:
        raise ValidationError(f"trace of {n} samples shorter than window {w}")
    prev_power = np.concatenate([[p[0]], p[:-1]])
    rows = np.column_stack([pmcs, prev_power])  # (n, m+1)
    starts = np.arange(0, n - w + 1, stride)
    X_seq = np.stack([rows[s : s + w] for s in starts])
    Y_seq = np.stack([p[s : s + w] for s in starts])
    return X_seq, Y_seq


def windows_from_bundles(
    bundles: Sequence[TraceBundle], miss_interval: int, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Window datasets per bundle, concatenated (windows never straddle
    bundle boundaries — consecutive benchmarks are unrelated programs)."""
    xs, ys = [], []
    for b in bundles:
        X_seq, Y_seq = build_windows(b.pmcs.matrix, b.node.values, miss_interval, stride)
        xs.append(X_seq)
        ys.append(Y_seq)
    return np.concatenate(xs), np.concatenate(ys)


def build_anchor_windows(
    pmcs: np.ndarray,
    p_node: np.ndarray,
    miss_interval: int,
    offsets: "Sequence[int] | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Anchor-relative window construction for DynamicTRR.

    Simulates the deployed sensing pattern: readings land every
    ``miss_interval`` seconds starting at ``offset``; the power feature is
    the **hold-last-reading** trace (the only power information genuinely
    available online), and the label is the *deviation* of true power from
    that held anchor. Because every window of width ``miss_interval``
    contains exactly one reading (the paper's own invariant, §4.2.2), the
    network learns to project power forward from a measured anchor using
    the PMC evolution — absolute PMC→power mappings, which do not transfer
    across programs, are never needed.

    Returns ``(X_seq, Y_seq)`` with shapes ``(k, w, m+1)`` / ``(k, w)``.
    """
    pmcs = np.asarray(pmcs, dtype=np.float64)
    p = np.asarray(p_node, dtype=np.float64)
    if pmcs.ndim != 2:
        raise ValidationError(f"pmcs must be 2-D, got {pmcs.shape}")
    check_consistent_length(pmcs, p, names=("pmcs", "p_node"))
    n = pmcs.shape[0]
    w = int(miss_interval)
    if w < 2:
        raise ValidationError("miss_interval must be >= 2")
    if n < 2 * w:
        raise ValidationError(f"trace of {n} samples too short for window {w}")
    if offsets is None:
        offsets = range(0, w, max(1, w // 3))
    xs, ys = [], []
    for offset in offsets:
        reading_idx = np.arange(offset, n, w)
        if reading_idx.size == 0:
            continue
        positions = np.searchsorted(reading_idx, np.arange(n), side="right") - 1
        positions = np.clip(positions, 0, reading_idx.size - 1)
        hold = p[reading_idx[positions]]
        rows = np.column_stack([pmcs, hold])
        starts = np.arange(int(reading_idx[0]), n - w + 1)
        if starts.size == 0:
            continue
        xs.append(np.stack([rows[s : s + w] for s in starts]))
        ys.append(np.stack([(p - hold)[s : s + w] for s in starts]))
    if not xs:
        raise ValidationError("no anchor windows could be built")
    return np.concatenate(xs), np.concatenate(ys)
