"""StaticTRR: offline temporal-resolution restoration (paper §4.2.1).

Pipeline:

1. **Spline model** — a natural cubic spline through the sparse IM readings
   recovers the long-term power trend ``P_splined``.
2. **ResModel** — a decision tree over PMCs predicts the deviation of true
   power from the trend (the short-term fluctuation the spline cannot see),
   yielding ``P_residual = P_splined + residual``. Residual targets are
   obtained by 2-fold cross-fitting over the labeled readings: the spline
   is fitted on one half of the knots and residuals measured on the other,
   so the tree never learns from residuals the final spline has already
   absorbed. (The paper trains on a 50 % subset; cross-fitting is the
   symmetric version of the same idea.)
3. **Post-processing** — Algorithm 1 fuses the two estimates using the
   physical power limits and the α/β agreement thresholds.

Faithfulness note: Operation 1 in the paper's Algorithm 1 triggers on
``P_splined[i] ≥ 30 % · (P_upper − P_bottom)``, which for any loaded node is
always true and would flatten the whole trace. We trigger on the *predicted
mutation magnitude* ``|P_residual[i] − P_splined[i]|`` instead — the reading
of the operation that matches its stated purpose (spreading a detected
sustained phase change across the surrounding half-window). This deviation
is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..interp.spline import CubicSplineInterpolator
from ..ml.tree import DecisionTreeRegressor
from ..obs import current_tracer
from ..perf import precompile
from ..sensors.base import SparseReadings
from ..utils.validation import check_2d
from .config import HighRPMConfig


@dataclass(frozen=True)
class StaticTRRResult:
    """All intermediate and final estimates from one restoration."""

    p_splined: np.ndarray
    p_residual: np.ndarray
    p_trr: np.ndarray
    reading_indices: np.ndarray

    def __len__(self) -> int:
        return int(self.p_trr.shape[0])


class StaticTRR:
    """Spline + ResModel + Algorithm-1 fusion.

    Parameters
    ----------
    config:
        Framework configuration (α, β, spike threshold, miss_interval).
    p_upper / p_bottom:
        Physical node-power limits; override the config's values. These are
        platform constants (e.g. ``spec.max_node_power_w``).
    """

    def __init__(
        self,
        config: "HighRPMConfig | None" = None,
        p_upper: "float | None" = None,
        p_bottom: "float | None" = None,
        res_model_factory=None,
        trend_factory=None,
    ) -> None:
        self.config = config or HighRPMConfig()
        self.p_upper = p_upper if p_upper is not None else self.config.p_upper
        self.p_bottom = p_bottom if p_bottom is not None else self.config.p_bottom
        # The residual set is small (one row per IM reading), so the tree is
        # kept shallow — at depth 12 it memorises reading noise.
        self._res_model_factory = res_model_factory or (
            lambda: DecisionTreeRegressor(min_samples_leaf=4, max_depth=4)
        )
        # The trend model is pluggable for ablations (spline vs. linear
        # interpolation); anything with fit(x, y)/predict(xq) works.
        self._trend_factory = trend_factory or CubicSplineInterpolator
        self.res_model_ = None
        self.spline_ = None

    # ------------------------------------------------------------------ fit
    def _limits(self, readings: SparseReadings) -> tuple[float, float]:
        """Resolve (p_bottom, p_upper), falling back to data-driven bounds."""
        lo = self.p_bottom
        hi = self.p_upper
        if lo is None:
            lo = float(readings.values.min()) * 0.8
        if hi is None:
            hi = float(readings.values.max()) * 1.2
        if hi <= lo:
            raise ValidationError(f"invalid power limits: [{lo}, {hi}]")
        return float(lo), float(hi)

    def fit_restore(
        self, pmcs: np.ndarray, readings: SparseReadings
    ) -> StaticTRRResult:
        """Fit on one trace's sparse readings and restore it to 1 Sa/s."""
        pmcs = check_2d(pmcs, "pmcs")
        n = pmcs.shape[0]
        if readings.n_dense != n:
            raise ValidationError(
                f"readings cover {readings.n_dense} samples but pmcs has {n}"
            )
        if len(readings) < 4:
            raise ValidationError("StaticTRR needs at least four IM readings")
        idx = readings.indices
        vals = readings.values
        self._lo, self._hi = self._limits(readings)
        t_all = np.arange(n, dtype=np.float64)
        tracer = current_tracer()

        # Step 1: trend from all readings.
        with tracer.span("trr.spline"):
            self.spline_ = self._trend_factory().fit(idx.astype(float), vals)
            p_splined = self.spline_.predict(t_all)

        # Step 2: cross-fitted residual targets at the labeled points.
        with tracer.span("trr.resmodel"):
            residual_targets = np.empty(len(readings))
            for fold in (0, 1):
                train_sel = np.arange(len(readings)) % 2 == fold
                # Guard the degenerate two-knot minimum.
                if train_sel.sum() < 2:
                    train_sel = np.ones(len(readings), dtype=bool)
                fold_spline = self._trend_factory().fit(
                    idx[train_sel].astype(float), vals[train_sel]
                )
                out_sel = ~train_sel if train_sel.sum() < len(readings) else train_sel
                residual_targets[out_sel] = vals[out_sel] - fold_spline.predict(
                    idx[out_sel].astype(float)
                )
            if not self.config.residual_signed:
                residual_targets = np.abs(residual_targets)

            self.res_model_ = self._res_model_factory()
            self.res_model_.fit(pmcs[idx], residual_targets)
            # Flatten the freshly fitted ResModel eagerly: the dense
            # prediction below (and any later re-restore) runs over the whole
            # trace, which is exactly the batch shape the compiled descent is
            # built for.
            precompile(self.res_model_)
            residual_hat = self.res_model_.predict(pmcs)
            if not self.config.residual_signed:
                # Unsigned mode (the paper's ABS target): apply the magnitude
                # in the direction of the local spline curvature error proxy.
                residual_hat = residual_hat * np.sign(
                    np.gradient(p_splined) + 1e-12
                )
            p_residual = p_splined + residual_hat

        # Step 3: Algorithm-1 fusion.
        with tracer.span("trr.fusion"):
            p_trr = self._post_process(p_splined.copy(), p_residual.copy())
            # Observed instants keep their readings — they are measurements.
            p_trr[idx] = vals
        return StaticTRRResult(
            p_splined=p_splined,
            p_residual=p_residual,
            p_trr=p_trr,
            reading_indices=idx.copy(),
        )

    # ---------------------------------------------------- Algorithm 1 fusion
    def _post_process(
        self, p_splined: np.ndarray, p_residual: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        lo, hi = self._lo, self._hi
        n = p_splined.shape[0]
        half = cfg.miss_interval // 2

        # Operation 1: large predicted mutations are sustained phase changes;
        # hold the mutated level across the half-window (see module note).
        mutation = p_residual - p_splined
        big = np.flatnonzero(np.abs(mutation) >= cfg.spike_fraction * (hi - lo))
        for i in big:
            start, stop = max(0, i - half), min(n, i + half)
            p_splined[start:stop] = p_splined[i]

        # Operations 2 & 3: out-of-range ResModel output is distrusted.
        out_of_range = (p_residual >= hi) | (p_residual <= lo)
        p_residual[out_of_range] = p_splined[out_of_range]

        # Fusion by agreement band.
        gap = np.abs(p_splined - p_residual)
        floor = np.minimum(np.abs(p_splined), np.abs(p_residual))
        p_trr = np.where(gap <= cfg.alpha * floor, p_splined, p_splined)
        mid = (gap > cfg.alpha * floor) & (gap <= cfg.beta * floor)
        p_trr = np.where(mid, 0.5 * (p_splined + p_residual), p_trr)
        # gap > beta·floor keeps the spline (already the default above).
        return np.clip(p_trr, lo, hi)

    # -------------------------------------------------------------- predict
    def restore(self, pmcs: np.ndarray, readings: SparseReadings) -> np.ndarray:
        """Convenience: fit_restore and return only the fused estimate."""
        return self.fit_restore(pmcs, readings).p_trr
