"""StaticTRR: offline temporal-resolution restoration (paper §4.2.1).

Pipeline:

1. **Spline model** — a natural cubic spline through the sparse IM readings
   recovers the long-term power trend ``P_splined``.
2. **ResModel** — a decision tree over PMCs predicts the deviation of true
   power from the trend (the short-term fluctuation the spline cannot see),
   yielding ``P_residual = P_splined + residual``. Residual targets are
   obtained by 2-fold cross-fitting over the labeled readings: the spline
   is fitted on one half of the knots and residuals measured on the other,
   so the tree never learns from residuals the final spline has already
   absorbed. (The paper trains on a 50 % subset; cross-fitting is the
   symmetric version of the same idea.)
3. **Post-processing** — Algorithm 1 fuses the two estimates using the
   physical power limits and the α/β agreement thresholds.

Faithfulness note: Operation 1 in the paper's Algorithm 1 triggers on
``P_splined[i] ≥ 30 % · (P_upper − P_bottom)``, which for any loaded node is
always true and would flatten the whole trace. We trigger on the *predicted
mutation magnitude* ``|P_residual[i] − P_splined[i]|`` instead — the reading
of the operation that matches its stated purpose (spreading a detected
sustained phase change across the surrounding half-window). This deviation
is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..interp.spline import CubicSplineInterpolator
from ..ml.tree import DecisionTreeRegressor
from ..obs import current_tracer
from ..perf import precompile
from ..sensors.base import SparseReadings
from ..utils.validation import check_2d
from .config import HighRPMConfig


@dataclass(frozen=True)
class StaticTRRResult:
    """All intermediate and final estimates from one restoration."""

    p_splined: np.ndarray
    p_residual: np.ndarray
    p_trr: np.ndarray
    reading_indices: np.ndarray

    def __len__(self) -> int:
        return int(self.p_trr.shape[0])


class StaticTRR:
    """Spline + ResModel + Algorithm-1 fusion.

    Parameters
    ----------
    config:
        Framework configuration (α, β, spike threshold, miss_interval).
    p_upper / p_bottom:
        Physical node-power limits; override the config's values. These are
        platform constants (e.g. ``spec.max_node_power_w``).
    """

    def __init__(
        self,
        config: "HighRPMConfig | None" = None,
        p_upper: "float | None" = None,
        p_bottom: "float | None" = None,
        res_model_factory=None,
        trend_factory=None,
    ) -> None:
        self.config = config or HighRPMConfig()
        self.p_upper = p_upper if p_upper is not None else self.config.p_upper
        self.p_bottom = p_bottom if p_bottom is not None else self.config.p_bottom
        # The residual set is small (one row per IM reading), so the tree is
        # kept shallow — at depth 12 it memorises reading noise.
        self._res_model_factory = res_model_factory or (
            lambda: DecisionTreeRegressor(min_samples_leaf=4, max_depth=4)
        )
        # The trend model is pluggable for ablations (spline vs. linear
        # interpolation); anything with fit(x, y)/predict(xq) works.
        self._trend_factory = trend_factory or CubicSplineInterpolator
        self.res_model_ = None
        self.spline_ = None

    # ------------------------------------------------------------------ fit
    def _limits(self, readings: SparseReadings) -> tuple[float, float]:
        """Resolve (p_bottom, p_upper), falling back to data-driven bounds."""
        lo = self.p_bottom
        hi = self.p_upper
        if lo is None:
            lo = float(readings.values.min()) * 0.8
        if hi is None:
            hi = float(readings.values.max()) * 1.2
        if hi <= lo:
            raise ValidationError(f"invalid power limits: [{lo}, {hi}]")
        return float(lo), float(hi)

    def _fit_models(self, pmcs_rows: np.ndarray, readings: SparseReadings) -> None:
        """Fit the spline and ResModel from the readings and the PMC rows at
        the reading instants (steps 1 and 2 minus the dense predictions)."""
        idx = readings.indices
        vals = readings.values
        self._lo, self._hi = self._limits(readings)
        tracer = current_tracer()

        # Step 1: trend from all readings.
        with tracer.span("trr.spline"):
            self.spline_ = self._trend_factory().fit(idx.astype(float), vals)

        # Step 2: cross-fitted residual targets at the labeled points.
        with tracer.span("trr.resmodel"):
            residual_targets = np.empty(len(readings))
            for fold in (0, 1):
                train_sel = np.arange(len(readings)) % 2 == fold
                # Guard the degenerate two-knot minimum.
                if train_sel.sum() < 2:
                    train_sel = np.ones(len(readings), dtype=bool)
                fold_spline = self._trend_factory().fit(
                    idx[train_sel].astype(float), vals[train_sel]
                )
                out_sel = ~train_sel if train_sel.sum() < len(readings) else train_sel
                residual_targets[out_sel] = vals[out_sel] - fold_spline.predict(
                    idx[out_sel].astype(float)
                )
            if not self.config.residual_signed:
                residual_targets = np.abs(residual_targets)

            self.res_model_ = self._res_model_factory()
            self.res_model_.fit(pmcs_rows, residual_targets)
            # Flatten the freshly fitted ResModel eagerly: the dense
            # prediction (and any later re-restore) runs over whole traces or
            # fleet-stacked chunks, exactly the batch shapes the compiled
            # descent is built for.
            precompile(self.res_model_)

    def _check_trace(self, readings: SparseReadings, n: int) -> None:
        if readings.n_dense != n:
            raise ValidationError(
                f"readings cover {readings.n_dense} samples but pmcs has {n}"
            )
        if len(readings) < 4:
            raise ValidationError("StaticTRR needs at least four IM readings")

    def fit_restore(
        self, pmcs: np.ndarray, readings: SparseReadings
    ) -> StaticTRRResult:
        """Fit on one trace's sparse readings and restore it to 1 Sa/s."""
        pmcs = check_2d(pmcs, "pmcs")
        n = pmcs.shape[0]
        self._check_trace(readings, n)
        idx = readings.indices
        vals = readings.values
        self._fit_models(pmcs[idx], readings)
        t_all = np.arange(n, dtype=np.float64)
        tracer = current_tracer()

        with tracer.span("trr.spline"):
            p_splined = self.spline_.predict(t_all)

        with tracer.span("trr.resmodel"):
            residual_hat = self.res_model_.predict(pmcs)
            if not self.config.residual_signed:
                # Unsigned mode (the paper's ABS target): apply the magnitude
                # in the direction of the local spline curvature error proxy.
                residual_hat = residual_hat * np.sign(
                    np.gradient(p_splined) + 1e-12
                )
            p_residual = p_splined + residual_hat

        # Step 3: Algorithm-1 fusion.
        with tracer.span("trr.fusion"):
            p_trr = self._post_process(p_splined.copy(), p_residual.copy())
            # Observed instants keep their readings — they are measurements.
            p_trr[idx] = vals
        return StaticTRRResult(
            p_splined=p_splined,
            p_residual=p_residual,
            p_trr=p_trr,
            reading_indices=idx.copy(),
        )

    # ---------------------------------------------------- Algorithm 1 fusion
    def _post_process(
        self, p_splined: np.ndarray, p_residual: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        lo, hi = self._lo, self._hi
        n = p_splined.shape[0]
        half = cfg.miss_interval // 2

        # Operation 1: large predicted mutations are sustained phase changes;
        # hold the mutated level across the half-window (see module note).
        mutation = p_residual - p_splined
        big = np.flatnonzero(np.abs(mutation) >= cfg.spike_fraction * (hi - lo))
        # repro-lint: disable=per-sample-loop — holds overlap and later holds
        # must read earlier holds' writes (in-place propagation is the
        # reference semantics); iterations are O(spikes), not O(samples).
        for i in big:
            start, stop = max(0, i - half), min(n, i + half)
            p_splined[start:stop] = p_splined[i]

        # Operations 2 & 3: out-of-range ResModel output is distrusted.
        out_of_range = (p_residual >= hi) | (p_residual <= lo)
        p_residual[out_of_range] = p_splined[out_of_range]

        # Fusion by agreement band. Within the α band the estimators agree
        # and the spline is kept; beyond the β band the ResModel is
        # distrusted and the spline is kept too — so the spline is the
        # default on both sides and only the mid band blends the two.
        gap = np.abs(p_splined - p_residual)
        floor = np.minimum(np.abs(p_splined), np.abs(p_residual))
        mid = (gap > cfg.alpha * floor) & (gap <= cfg.beta * floor)
        p_trr = np.where(mid, 0.5 * (p_splined + p_residual), p_splined)
        return np.clip(p_trr, lo, hi)

    # -------------------------------------------------------------- predict
    def restore(self, pmcs: np.ndarray, readings: SparseReadings) -> np.ndarray:
        """Convenience: fit_restore and return only the fused estimate."""
        return self.fit_restore(pmcs, readings).p_trr

    # ------------------------------------------------------------- streaming
    def fit_stream(
        self, pmcs_rows: np.ndarray, readings: SparseReadings
    ) -> "StaticTRRStream":
        """Fit from the readings alone and return a bounded-memory stream.

        ``pmcs_rows`` are the PMC rows *at the reading instants* (shape
        ``(len(readings), d)``) — the only dense data the fit needs. The
        returned stream restores the trace chunk by chunk; concatenating
        its outputs is bit-identical to ``fit_restore(...).p_trr`` on the
        same trace.
        """
        pmcs_rows = check_2d(pmcs_rows, "pmcs_rows")
        self._check_trace(readings, int(readings.n_dense))
        if pmcs_rows.shape[0] != len(readings):
            raise ValidationError(
                f"fit_stream needs one PMC row per reading: got "
                f"{pmcs_rows.shape[0]} rows for {len(readings)} readings"
            )
        self._fit_models(pmcs_rows, readings)
        return StaticTRRStream(self, readings)


class _FusionScan:
    """Streaming, bit-exact replay of :meth:`StaticTRR._post_process`.

    Operation 1 is the only non-elementwise step of Algorithm 1: a hold at
    sample ``i`` copies the (already mutated) spline level across the
    window ``[i − half, i + half)``, and later holds read earlier holds'
    writes. The scan keeps a working buffer of not-yet-final spline values
    and applies holds in global ascending order — forward writes that spill
    past the fed frontier are queued in ``_pending`` and land before the
    next chunk's own holds. A position is final once every hold that can
    reach it has been applied, i.e. with a lag of ``half`` samples behind
    the feed. Operations 2/3, the agreement-band fusion, the clip and the
    measured-sample override are elementwise and run at finalisation.
    """

    def __init__(self, config: HighRPMConfig, lo: float, hi: float,
                 readings: SparseReadings) -> None:
        self._half = config.miss_interval // 2
        self._alpha = config.alpha
        self._beta = config.beta
        self._thresh = config.spike_fraction * (hi - lo)
        self._lo = lo
        self._hi = hi
        self._idx = readings.indices
        self._vals = readings.values
        self.n = int(readings.n_dense)
        self.fed = 0
        self.emitted = 0
        # Preallocated working buffers for the span [emitted, fed): index 0
        # maps to ``emitted``. Sized to chunk + half on first feed and then
        # sliced, never reallocated, per feed (the span never exceeds the
        # finalisation lag ``half`` plus one chunk); only a larger chunk
        # forces a regrow.
        self._buf_len = 0  # valid prefix of the working buffers
        self._w_buf = np.empty(0)  # working spline values
        self._res_buf = np.empty(0)  # original residual estimates
        #: forward hold writes beyond the fed frontier, in hold order.
        self._pending: "list[tuple[int, int, float]]" = []

    # repro-lint: disable=boundary-validation — hot path (called once per
    # fed chunk): inputs are the stream's own spline/residual predictions,
    # already shaped by StaticTRRStream which validated the caller's chunk.
    def feed(self, p_splined: np.ndarray, p_residual: np.ndarray
             ) -> tuple[int, np.ndarray]:
        """Advance the scan by one chunk; returns the newly final span."""
        start = self.fed
        stop = start + p_splined.shape[0]
        if stop > self.n:
            raise ValidationError(
                f"fed {stop} samples into a {self.n}-sample trace"
            )
        base = self.emitted
        m = p_splined.shape[0]
        need = self._buf_len + m
        if need > self._w_buf.shape[0]:
            grown = max(need, m + self._half)
            w_new = np.empty(grown)
            res_new = np.empty(grown)
            w_new[:self._buf_len] = self._w_buf[:self._buf_len]
            res_new[:self._buf_len] = self._res_buf[:self._buf_len]
            self._w_buf, self._res_buf = w_new, res_new
        w = self._w_buf
        w[self._buf_len:need] = p_splined
        self._res_buf[self._buf_len:need] = p_residual
        self._buf_len = need
        # Earlier chunks' holds whose windows spill into (or past) this span.
        still_pending = []
        for w_start, w_stop, v in self._pending:
            w[w_start - base:min(w_stop, stop) - base] = v
            if w_stop > stop:
                still_pending.append((stop, w_stop, v))
        self._pending = still_pending
        # Operation 1 over the newly fed span, ascending — each hold reads
        # the working buffer, so earlier holds' writes propagate exactly as
        # in the in-place reference loop.
        mutation = p_residual - p_splined
        # repro-lint: disable=per-sample-loop — ascending in-place hold
        # propagation is the bit-identity reference semantics (overlapping
        # holds must see earlier writes); O(spikes) per chunk, not O(samples).
        for i in np.flatnonzero(np.abs(mutation) >= self._thresh) + start:
            v = w[i - base]
            w_start = max(0, i - self._half)
            w_stop = min(self.n, i + self._half)
            w[w_start - base:min(w_stop, stop) - base] = v
            if w_stop > stop:
                self._pending.append((stop, w_stop, v))
        self.fed = stop
        return self._finalize(max(base, stop - self._half))

    def flush(self) -> tuple[int, np.ndarray]:
        """Finalise the trailing ``half`` samples once the trace is fed."""
        if self.fed != self.n:
            raise ValidationError(
                f"flush before the trace is complete: fed {self.fed} of {self.n}"
            )
        return self._finalize(self.n)

    def _finalize(self, to: int) -> tuple[int, np.ndarray]:
        base = self.emitted
        if to <= base:
            return base, np.empty(0)
        k = to - base
        w = self._w_buf[:k]
        r = self._res_buf[:k].copy()
        # Operations 2 & 3: out-of-range ResModel output is distrusted.
        out_of_range = (r >= self._hi) | (r <= self._lo)
        r[out_of_range] = w[out_of_range]
        # Fusion by agreement band (spline wins outside the mid band).
        gap = np.abs(w - r)
        floor = np.minimum(np.abs(w), np.abs(r))
        mid = (gap > self._alpha * floor) & (gap <= self._beta * floor)
        p_trr = np.where(mid, 0.5 * (w + r), w)
        # In-place two-sided clamp (ufuncs directly; same result as np.clip
        # for lo <= hi, without the dispatch wrapper on the per-chunk path).
        np.minimum(p_trr, self._hi, out=p_trr)
        np.maximum(p_trr, self._lo, out=p_trr)
        # Observed instants keep their readings — they are measurements.
        sel_lo = int(self._idx.searchsorted(base, side="left"))
        sel_hi = int(self._idx.searchsorted(to, side="left"))
        p_trr[self._idx[sel_lo:sel_hi] - base] = self._vals[sel_lo:sel_hi]
        # Shift the unfinalised tail to the buffer head (overlap-safe
        # left-moving copy) instead of reallocating.
        tail = self._buf_len - k
        self._w_buf[:tail] = self._w_buf[k:self._buf_len]
        self._res_buf[:tail] = self._res_buf[k:self._buf_len]
        self._buf_len = tail
        self.emitted = to
        return base, p_trr


class StaticTRRStream:
    """Bounded-memory chunked restoration from a fitted :class:`StaticTRR`.

    Obtained via :meth:`StaticTRR.fit_stream`. Feed the trace's PMC rows in
    order with :meth:`restore_chunk`; outputs lag inputs by half a
    miss-interval (an Operation-1 hold at ``i`` rewrites ``[i − half,
    i + half)``, so a sample is final only once the scan has advanced
    ``half`` samples past it). :meth:`finish` flushes the tail. State is
    O(chunk + miss_interval) regardless of trace length.
    """

    def __init__(self, trr: StaticTRR, readings: SparseReadings) -> None:
        self._trr = trr
        self.n = int(readings.n_dense)
        self._scan = _FusionScan(trr.config, trr._lo, trr._hi, readings)
        # Bind the trend model's compiled evaluator once per run: every
        # chunk evaluates the same fitted spline at indices this stream
        # generates itself, so the per-call validation in ``predict`` is
        # pure overhead. Pluggable trend models without a compiled
        # evaluator fall back to their public predict.
        get_eval = getattr(trr.spline_, "evaluator", None)
        self._trend_eval = get_eval() if get_eval is not None else trr.spline_.predict

    @property
    def samples_fed(self) -> int:
        return self._scan.fed

    @property
    def samples_emitted(self) -> int:
        return self._scan.emitted

    def restore_chunk(
        self, pmc_chunk: np.ndarray, residual_hat: "np.ndarray | None" = None
    ) -> tuple[int, np.ndarray]:
        """Feed the next chunk; returns ``(start, p_trr_part)`` finalised.

        ``residual_hat`` optionally supplies the raw ResModel prediction
        for the chunk (the fleet monitor batches it across nodes); it must
        equal ``res_model_.predict(pmc_chunk)``.
        """
        pmc_chunk = check_2d(pmc_chunk, "pmc_chunk")
        trr = self._trr
        start = self._scan.fed
        stop = start + pmc_chunk.shape[0]
        if stop > self.n:
            raise ValidationError(
                f"chunk [{start}, {stop}) overruns the {self.n}-sample trace"
            )
        tracer = current_tracer()
        t = np.arange(start, stop, dtype=np.float64)
        with tracer.span("trr.spline"):
            p_splined = self._trend_eval(t)
        with tracer.span("trr.resmodel"):
            if residual_hat is None:
                residual_hat = trr.res_model_.predict(pmc_chunk)
            else:
                residual_hat = np.asarray(residual_hat, dtype=np.float64)
                if residual_hat.shape != (pmc_chunk.shape[0],):
                    raise ValidationError(
                        f"residual_hat has shape {residual_hat.shape}, "
                        f"expected ({pmc_chunk.shape[0]},)"
                    )
            if not trr.config.residual_signed:
                residual_hat = residual_hat * np.sign(
                    self._trend_gradient(start, stop) + 1e-12
                )
            p_residual = p_splined + residual_hat
        with tracer.span("trr.fusion"):
            return self._scan.feed(p_splined, p_residual)

    def finish(self) -> tuple[int, np.ndarray]:
        """Flush the trailing half-window once the whole trace is fed."""
        with current_tracer().span("trr.fusion"):
            return self._scan.flush()

    def _trend_gradient(self, start: int, stop: int) -> np.ndarray:
        """``np.gradient`` of the dense spline trend, restricted to a span.

        Bit-identical to ``np.gradient(spline.predict(arange(n)))[start:stop]``:
        one extra spline point on each side supplies the centred differences,
        and the trace edges fall back to the same one-sided differences.
        """
        if stop == start:
            return np.empty(0)
        n = self.n
        a = max(0, start - 1)
        b = min(n, stop + 1)
        s = self._trend_eval(np.arange(a, b, dtype=np.float64))
        pos = np.arange(start, stop) - a
        left = np.maximum(pos - 1, 0)
        right = np.minimum(pos + 1, b - 1 - a)
        g = (s[right] - s[left]) / 2.0
        if start == 0:
            g[0] = s[1] - s[0]
        if stop == n:
            g[-1] = s[-1] - s[-2]
        return g
