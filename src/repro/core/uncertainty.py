"""Uncertainty quantification for DynamicTRR via seed ensembles.

A monitoring consumer acting on restored power (capping, scheduling,
anomaly response) needs to know how much to trust an estimate between two
readings. The paper does not quantify this; the standard recipe is a deep
ensemble: train ``k`` DynamicTRR instances differing only in initialisation
seed, restore with each, and report the per-sample mean and spread. At
measured instants the spread collapses to ~sensor noise; mid-gap it widens
— exactly the trust profile a controller wants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..sensors.base import SparseReadings
from ..utils.validation import check_1d, check_2d
from .config import HighRPMConfig
from .dynamic_trr import DynamicTRR


@dataclass(frozen=True)
class UncertainRestoration:
    """Per-sample restored power with ensemble spread."""

    mean: np.ndarray
    std: np.ndarray
    members: np.ndarray  # (k, n) individual restorations

    def __len__(self) -> int:
        return int(self.mean.shape[0])

    def interval(self, z: float = 2.0) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) band at ``z`` ensemble standard deviations."""
        return self.mean - z * self.std, self.mean + z * self.std

    def coverage(self, truth: np.ndarray, z: float = 2.0) -> float:
        """Fraction of true samples inside the ±z band."""
        truth = check_1d(truth, "truth")
        if truth.shape != self.mean.shape:
            raise ValidationError("truth must match the restoration length")
        lo, hi = self.interval(z)
        return float(((truth >= lo) & (truth <= hi)).mean())


class DynamicTRREnsemble:
    """``k`` independently-seeded DynamicTRR members."""

    def __init__(self, config: "HighRPMConfig | None" = None, k: int = 3) -> None:
        if k < 2:
            raise ValidationError("an ensemble needs k >= 2 members")
        base = config or HighRPMConfig()
        self.k = int(k)
        self.members = [
            DynamicTRR(replace(base, seed=base.seed + 1000 * i))
            for i in range(self.k)
        ]
        self._fitted = False

    def fit(self, bundles, p_bottom: "float | None" = None,
            p_upper: "float | None" = None) -> "DynamicTRREnsemble":
        for member in self.members:
            member.fit(bundles, p_bottom=p_bottom, p_upper=p_upper)
        self._fitted = True
        return self

    def restore(self, pmcs: np.ndarray, readings: SparseReadings) -> UncertainRestoration:
        if not self._fitted:
            raise NotFittedError("DynamicTRREnsemble.restore before fit")
        pmcs = check_2d(pmcs, "pmcs")
        stack = np.stack([m.restore(pmcs, readings) for m in self.members])
        # Ensemble spread understates total uncertainty at measured points
        # (all members return the reading there); floor it at sensor scale.
        std = stack.std(axis=0)
        return UncertainRestoration(
            mean=stack.mean(axis=0), std=std, members=stack
        )
