"""DynamicTRR: online temporal-resolution restoration (paper §4.2.2).

StaticTRR is a *fitting* method — it needs readings on both sides of the
gap. DynamicTRR is a *forecasting* method for live monitoring: between two
IM readings, a compact two-layer LSTM predicts each second's node power
from the window of recent ``(PMCs, P'_node)`` rows.

The window construction follows the paper's invariant that every window of
width ``miss_interval`` contains exactly one measured reading. The power
feature channel is the **hold-last-reading** trace (the only power signal
genuinely available online) and the network predicts the *deviation* of
the current second's power from that held anchor. This anchor-relative
formulation is what gives DynamicTRR its robustness on unseen applications
(§6.1.1): projecting power forward from a measured anchor transfers across
programs, whereas absolute PMC→power mappings do not.

Whenever a real reading arrives, the model is fine-tuned on a replay
buffer of recent measured windows (the paper's < 2 s online adjustment) at
a reduced learning rate — gentle enough not to erase offline training.
"""

from __future__ import annotations

import copy
from collections import deque

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..ml.recurrent import LSTMRegressor
from ..obs import current_tracer, get_registry
from ..perf import compile_lstm
from ..sensors.base import SparseReadings
from ..utils.validation import check_2d
from .config import HighRPMConfig
from .dataset import build_anchor_windows


class OnlineTRRSession:
    """Streaming restoration for one monitored run.

    Feed one second at a time with :meth:`step`. The session owns a private
    copy of the offline model, so per-node fine-tuning never corrupts the
    shared instance (each node adapts independently, §4.1).
    """

    #: replay-buffer capacity for fine-tuning windows.
    BUFFER_CAP = 32
    #: fine-tune budget multiplier when the IM feed recovers from an outage
    #: (the model drifted unanchored and needs a stronger correction).
    RESYNC_BOOST = 3

    def __init__(self, trr: "DynamicTRR", retain: bool = True) -> None:
        self._trr = trr
        self._model = copy.deepcopy(trr.model_)
        # Session state is bounded: the window only ever looks back
        # ``miss_interval`` steps, so the feature deques drop older rows.
        w = trr.config.miss_interval
        self._pmcs: "deque[np.ndarray]" = deque(maxlen=w)
        self._hold: "deque[float]" = deque(maxlen=w)  # hold-last-reading channel
        self._t = 0
        #: retain=False keeps memory O(miss_interval) on arbitrarily long
        #: runs: per-step estimates are returned but not accumulated (the
        #: ``estimates``/``measured_mask`` properties stay empty).
        self._retain = bool(retain)
        self._estimates: list[float] = []
        self._measured_mask: list[bool] = []
        self._buffer_X: list[np.ndarray] = []
        self._buffer_y: list[np.ndarray] = []
        self._last_reading_t: "int | None" = None
        #: timestamps at which the feed recovered after an outage gap.
        self.resyncs: list[int] = []
        #: segment forecaster, built lazily from the session's model copy
        #: and invalidated after every fine-tune (partial_fit mutates the
        #: parameters the kernel folded at build time).
        self._kernel: "object | None" = None

    @property
    def t(self) -> int:
        """Number of seconds processed so far."""
        return self._t

    @property
    def estimates(self) -> np.ndarray:
        """All node-power estimates produced so far (measured where known)."""
        return np.asarray(self._estimates)

    @property
    def measured_mask(self) -> np.ndarray:
        """True where the estimate came straight from an IM reading."""
        return np.asarray(self._measured_mask)

    def _window(self, t: int) -> np.ndarray:
        # The deques hold exactly the last ``min(t+1, w)`` steps — the whole
        # window; ``t`` must be the current step (kept for API familiarity).
        w = self._trr.config.miss_interval
        rows = [np.concatenate([p, [h]]) for p, h in zip(self._pmcs, self._hold)]
        while len(rows) < w:  # cold start: left-pad with the first row
            rows.insert(0, rows[0])
        return np.asarray(rows)[None, :, :]

    def _fine_tune(self, X: np.ndarray, deviation: float, boost: int = 1) -> None:
        """Replay-buffer fine-tuning when a reading lands."""
        trr = self._trr
        w = X.shape[1]
        labels = np.full((1, w), np.nan)
        labels[0, -1] = deviation
        self._buffer_X.append(X[0])
        self._buffer_y.append(labels[0])
        if len(self._buffer_X) > self.BUFFER_CAP:
            self._buffer_X.pop(0)
            self._buffer_y.pop(0)
        bx = np.stack(self._buffer_X)
        by = np.stack(self._buffer_y)
        old_lr = self._model.lr
        self._model.lr = trr.finetune_lr
        get_registry().counter(
            "repro_online_finetune_total",
            "Online fine-tune rounds by trigger.", ("kind",),
        ).labels(kind="resync" if boost > 1 else "regular").inc()
        try:
            with current_tracer().span("trr.finetune"):
                self._model.partial_fit(
                    bx, by, n_steps=int(boost) * trr.config.finetune_steps
                )
        finally:
            self._model.lr = old_lr
        # partial_fit mutated the parameters the kernel folded — rebuild
        # lazily on the next forecast.
        self._kernel = None

    def _reading_step(self, pmc_row: np.ndarray, value: float) -> float:
        """Consume one measured second: anchor, fine-tune, re-sync check."""
        trr = self._trr
        t = self._t
        self._pmcs.append(pmc_row)
        prev_hold = self._hold[-1] if self._hold else value
        # Re-sync: a reading after an outage-length silence means the
        # feed recovered; the session drifted unanchored meanwhile, so
        # fine-tune harder to pull the model back onto the feed.
        gap_limit = trr.config.resync_gap_factor * trr.config.miss_interval
        recovered = (
            self._last_reading_t is not None
            and t - self._last_reading_t > gap_limit
        )
        if recovered:
            self.resyncs.append(t)
            get_registry().counter(
                "repro_online_resyncs_total",
                "IM-feed recoveries after an outage-length gap.",
            ).inc()
        # Anchor BEFORE updating the hold channel: the fine-tune label is
        # the deviation of this reading from the previous anchor, which
        # is exactly what the model predicts at gap-end positions.
        self._hold.append(prev_hold)
        X = self._window(t)
        self._fine_tune(X, value - prev_hold,
                        boost=self.RESYNC_BOOST if recovered else 1)
        self._hold[-1] = value  # future windows hold the new reading
        self._last_reading_t = t
        self._t = t + 1
        if self._retain:
            self._measured_mask.append(True)
            self._estimates.append(value)
        return value

    def _segment_rows(self, pmcs_seg: np.ndarray, prev_hold: float) -> np.ndarray:
        """Distinct feature rows covering a segment's sliding windows.

        Returns ``(w − 1 + m, d + 1)``: up to ``w − 1`` rows of history from
        the deques (left-padded with the oldest available row on cold start,
        matching :meth:`_window`), then the segment's rows with the hold
        channel pinned at the anchor — forecasts never feed back into it.
        """
        w = self._trr.config.miss_interval
        m, d = pmcs_seg.shape
        L = len(self._pmcs)
        hist = min(L, w - 1)
        pad = w - 1 - hist
        rows = np.empty((w - 1 + m, d + 1))
        if hist:
            rows[pad:w - 1, :d] = list(self._pmcs)[L - hist:]
            rows[pad:w - 1, d] = list(self._hold)[L - hist:]
        rows[w - 1:, :d] = pmcs_seg
        rows[w - 1:, d] = prev_hold
        if pad:
            # Cold start: padding only happens while the deques still hold
            # the whole run, so the oldest available row *is* global row 0.
            rows[:pad] = rows[pad]
        return rows

    def _forecast_segment(self, pmcs_seg: np.ndarray) -> np.ndarray:
        """Forecast a run of consecutive unmeasured seconds in one batch.

        The hold anchor is constant across the segment (only readings move
        it), so the ``m`` windows share ``m + w − 1`` rows and one kernel
        call covers them all. The kernel's fixed-order math makes the
        result independent of how the trace was cut into segments.
        """
        trr = self._trr
        m = pmcs_seg.shape[0]
        prev_hold = self._hold[-1] if self._hold else trr.train_power_mean_
        rows = self._segment_rows(pmcs_seg, prev_hold)
        kernel = self._kernel
        if kernel is None:
            kernel = self._kernel = compile_lstm(
                self._model, trr.config.miss_interval,
                fast_math=trr.config.fast_math,
            )
        deviations = kernel.forecast(rows, m)
        # Physical clamping: a forecast cannot leave the platform range.
        estimates = np.clip(prev_hold + deviations, trr.p_bottom_, trr.p_upper_)
        self._pmcs.extend(pmcs_seg)
        self._hold.extend([prev_hold] * m)
        self._t += m
        if self._retain:
            self._estimates.extend(estimates.tolist())
            self._measured_mask.extend([False] * m)
        return estimates

    # repro-lint: disable=boundary-validation — hot path (called once per
    # monitored second): shape-checked inline against the fitted n_pmcs_
    # below; whole-trace entry points validate via check_2d in run().
    def step(self, pmc_row: np.ndarray, im_reading: "float | None" = None) -> float:
        """Process one second; returns the node-power estimate for it.

        ``im_reading`` is the IM value when the BMC produced one this second
        (it then *is* the estimate, and triggers fine-tuning), else None.
        """
        trr = self._trr
        pmc_row = np.asarray(pmc_row, dtype=np.float64).ravel()
        if pmc_row.shape[0] != trr.n_pmcs_:
            raise ValidationError(
                f"expected {trr.n_pmcs_} PMCs per row, got {pmc_row.shape[0]}"
            )
        if im_reading is not None:
            return self._reading_step(pmc_row, float(im_reading))
        # Forecasts route through the same segment kernel as run_chunk
        # (a segment of one), so both entry points produce identical bits.
        return float(self._forecast_segment(pmc_row[None, :])[0])

    def run_chunk(
        self, pmcs: np.ndarray, readings: "SparseReadings | None" = None
    ) -> np.ndarray:
        """Process the next chunk of a trace; returns its estimates.

        ``readings`` is the run's full sparse stream (global indices); only
        readings inside this chunk's span are consumed. Chunks must arrive
        in order — the concatenated outputs are bit-identical to one
        :meth:`run` over the whole trace.
        """
        trr = self._trr
        pmcs = check_2d(pmcs, "pmcs")
        if pmcs.shape[1] != trr.n_pmcs_:
            raise ValidationError(
                f"expected {trr.n_pmcs_} PMCs per row, got {pmcs.shape[1]}"
            )
        pmcs = np.ascontiguousarray(pmcs, dtype=np.float64)
        start = self._t
        n = pmcs.shape[0]
        if readings is None:
            r_pos = r_val = ()
        else:
            lo = int(np.searchsorted(readings.indices, start, side="left"))
            hi = int(np.searchsorted(readings.indices, start + n, side="left"))
            r_pos = (readings.indices[lo:hi] - start).tolist()
            r_val = readings.values[lo:hi].tolist()
        out = np.empty(n)
        with current_tracer().span("trr.dynamic"):
            # Segment the chunk at reading instants: each inter-reading run
            # of forecasts is one batched kernel call; each reading keeps
            # the sequential anchor/fine-tune semantics.
            k = 0
            for pos, val in zip(r_pos, r_val):
                if pos > k:
                    out[k:pos] = self._forecast_segment(pmcs[k:pos])
                out[pos] = self._reading_step(pmcs[pos], float(val))
                k = pos + 1
            if k < n:
                out[k:] = self._forecast_segment(pmcs[k:])
        return out

    def run(self, pmcs: np.ndarray, readings: "SparseReadings | None") -> np.ndarray:
        """Process a whole trace given its sparse IM readings.

        ``readings=None`` runs the session anchorless (model-only): every
        second is a clamped forecast from the training-campaign power level
        — the degraded mode used during a full IM outage.
        """
        return self.run_chunk(pmcs, readings)


class DynamicTRR:
    """Offline-trained, online-fine-tuned LSTM restorer."""

    def __init__(
        self,
        config: "HighRPMConfig | None" = None,
        finetune_lr: float = 1e-3,
    ) -> None:
        self.config = config or HighRPMConfig()
        self.finetune_lr = float(finetune_lr)
        self.model_: "LSTMRegressor | None" = None
        self.n_pmcs_: int = 0
        self.train_power_mean_: float = 0.0
        self.p_bottom_: float = -np.inf
        self.p_upper_: float = np.inf

    def fit(
        self,
        bundles,
        p_bottom: "float | None" = None,
        p_upper: "float | None" = None,
    ) -> "DynamicTRR":
        """Offline training on instrumented campaigns (dense node power)."""
        cfg = self.config
        xs, ys = [], []
        for b in bundles:
            if len(b) < 2 * cfg.miss_interval:
                continue
            X_seq, Y_seq = build_anchor_windows(
                b.pmcs.matrix, b.node.values, cfg.miss_interval
            )
            xs.append(X_seq)
            ys.append(Y_seq)
        if not xs:
            raise ValidationError("no training bundle is long enough")
        X_seq = np.concatenate(xs)
        Y_seq = np.concatenate(ys)
        self.n_pmcs_ = X_seq.shape[2] - 1
        # The anchor channel holds power readings; its mean is the campaign
        # power level (used only for the cold-start hold value).
        self.train_power_mean_ = float(X_seq[:, :, -1].mean())
        self.p_bottom_ = (
            float(p_bottom) if p_bottom is not None
            else float(X_seq[:, :, -1].min()) * 0.7
        )
        self.p_upper_ = (
            float(p_upper) if p_upper is not None
            else float(X_seq[:, :, -1].max()) * 1.3
        )
        self.model_ = LSTMRegressor(
            hidden_size=cfg.lstm_hidden,
            num_layers=cfg.lstm_layers,
            max_iter=cfg.lstm_iters,
            random_state=cfg.seed,
        )
        self.model_.fit(X_seq, Y_seq)
        return self

    def session(self, retain: bool = True) -> OnlineTRRSession:
        """A fresh streaming session with a private copy of the model.

        ``retain=False`` keeps the session's memory bounded on arbitrarily
        long runs (chunked callers collect ``run_chunk`` outputs instead of
        reading ``session.estimates``).
        """
        if self.model_ is None:
            raise NotFittedError("DynamicTRR.session before fit")
        return OnlineTRRSession(self, retain=retain)

    def restore(
        self, pmcs: np.ndarray, readings: "SparseReadings | None"
    ) -> np.ndarray:
        """One-shot restoration of a full trace (runs a session over it)."""
        pmcs = check_2d(pmcs, "pmcs")
        return self.session().run(pmcs, readings)
