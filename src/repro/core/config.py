"""Configuration for the HighRPM framework."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError


@dataclass(frozen=True)
class HighRPMConfig:
    """All tunables in one place.

    Parameters
    ----------
    miss_interval:
        Seconds between integrated-measurement readings (the paper's
        ``miss_interval``; 10 ⇒ restoring 0.1 Sa/s to 1 Sa/s is a 10×
        temporal-resolution gain).
    alpha / beta:
        Algorithm-1 agreement thresholds. When spline and ResModel disagree
        by less than ``alpha``·min(·) the spline wins; between ``alpha`` and
        ``beta`` they are averaged; beyond ``beta`` the ResModel is
        distrusted and the spline wins again.
    spike_fraction:
        Operation-1 threshold: a predicted short-term mutation larger than
        this fraction of the physical power range is treated as a sustained
        phase change and spread over the surrounding half-window.
    p_upper / p_bottom:
        Physical node-power limits used for clamping; when None they are
        taken from the platform spec at fit time.
    lstm_hidden / lstm_layers / lstm_iters:
        DynamicTRR network structure (paper §6.4.3 found 2 layers optimal)
        and offline training budget.
    srr_hidden / srr_iters:
        SRR MLP structure (one hidden layer) and training budget.
    finetune_steps:
        Online fine-tuning budget when a real IM reading arrives
        (the paper reports < 2 s; tens of Adam steps on one window).
    reinforcement_fraction / active_rounds:
        Active-learning stage: fraction of the combined (initial ∪ restored)
        sample set drawn as reinforcement samples, and number of rounds.
    resync_gap_factor:
        A reading arriving more than ``resync_gap_factor · miss_interval``
        seconds after the previous one means the IM feed was down and has
        recovered; the online session re-syncs with a boosted fine-tune.
        The same threshold classifies samples as model-only in the
        per-sample provenance flags.
    seed:
        Root seed for all stochastic pieces.
    fast_math:
        Opt-in throughput tier: route the compiled inference kernels
        (SRR MLP, DynamicTRR segment forecaster) through BLAS ``matmul``
        instead of fixed-order ``einsum``. Results then match the default
        path only within the documented tolerances
        (:data:`repro.perf.FAST_MATH_RTOL` / ``FAST_MATH_ATOL``) and the
        bit-identity chunking contract is relaxed to an allclose contract;
        everything else — provenance, modes, fine-tune triggers — is
        unchanged. Default False keeps bit-identical results.
    """

    miss_interval: int = 10
    alpha: float = 0.05
    beta: float = 0.25
    spike_fraction: float = 0.30
    p_upper: "float | None" = None
    p_bottom: "float | None" = None
    residual_signed: bool = True
    lstm_hidden: int = 16
    lstm_layers: int = 2
    lstm_iters: int = 500
    srr_hidden: int = 32
    srr_iters: int = 4000
    finetune_steps: int = 10
    reinforcement_fraction: float = 0.3
    active_rounds: int = 2
    resync_gap_factor: float = 2.0
    seed: int = 0
    fast_math: bool = False

    def __post_init__(self) -> None:
        if self.miss_interval < 2:
            raise ValidationError("miss_interval must be >= 2")
        if not 0.0 < self.alpha < self.beta:
            raise ValidationError("need 0 < alpha < beta")
        if not 0.0 < self.spike_fraction <= 1.0:
            raise ValidationError("spike_fraction must lie in (0, 1]")
        if self.p_upper is not None and self.p_bottom is not None:
            if self.p_upper <= self.p_bottom:
                raise ValidationError("p_upper must exceed p_bottom")
        for name in ("lstm_hidden", "lstm_layers", "lstm_iters", "srr_hidden",
                     "srr_iters", "finetune_steps", "active_rounds"):
            if getattr(self, name) < 1:
                raise ValidationError(f"{name} must be >= 1")
        if not 0.0 < self.reinforcement_fraction <= 1.0:
            raise ValidationError("reinforcement_fraction must lie in (0, 1]")
        if self.resync_gap_factor < 1.0:
            raise ValidationError("resync_gap_factor must be >= 1")
