"""Active-learning stage (paper Fig. 3, right half).

After initial training, HighRPM combines the **initial samples** (labeled,
from instrumented runs) with **restored samples** (pseudo-labeled by the
TRR/SRR models on unlabeled runs) into one pool; a sampler draws random
reinforcement samples from the pool, and the models are fine-tuned on them.
This is what adapts a deployed instance to node-to-node power variation
without re-instrumenting every node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_consistent_length, check_fraction


@dataclass(frozen=True)
class SamplePool:
    """Aligned sample arrays from which reinforcement batches are drawn."""

    pmcs: np.ndarray
    p_node: np.ndarray
    p_cpu: np.ndarray
    p_mem: np.ndarray
    restored: np.ndarray  # bool: True for pseudo-labeled rows

    def __post_init__(self) -> None:
        check_consistent_length(
            self.pmcs, self.p_node, self.p_cpu, self.p_mem, self.restored,
            names=("pmcs", "p_node", "p_cpu", "p_mem", "restored"),
        )

    def __len__(self) -> int:
        return int(self.pmcs.shape[0])

    @staticmethod
    def merge(initial: "SamplePool", restored: "SamplePool") -> "SamplePool":
        return SamplePool(
            pmcs=np.vstack([initial.pmcs, restored.pmcs]),
            p_node=np.concatenate([initial.p_node, restored.p_node]),
            p_cpu=np.concatenate([initial.p_cpu, restored.p_cpu]),
            p_mem=np.concatenate([initial.p_mem, restored.p_mem]),
            restored=np.concatenate([initial.restored, restored.restored]),
        )


class ReinforcementSampler:
    """Draws random reinforcement batches from a sample pool.

    ``restored_weight`` biases the draw toward pseudo-labeled samples
    (they carry the target node's recent behaviour); 1.0 means uniform.
    """

    def __init__(
        self,
        fraction: float = 0.3,
        restored_weight: float = 1.0,
        rng: "int | np.random.Generator | None" = 0,
    ) -> None:
        check_fraction(fraction, "fraction")
        if fraction == 0.0:
            raise ValidationError("fraction must be positive")
        if restored_weight <= 0:
            raise ValidationError("restored_weight must be positive")
        self.fraction = float(fraction)
        self.restored_weight = float(restored_weight)
        self._rng = as_generator(rng)

    def draw(self, pool: SamplePool) -> SamplePool:
        """One reinforcement batch (without replacement)."""
        n = len(pool)
        k = max(1, int(round(self.fraction * n)))
        weights = np.where(pool.restored, self.restored_weight, 1.0)
        weights = weights / weights.sum()
        idx = self._rng.choice(n, size=min(k, n), replace=False, p=weights)
        return SamplePool(
            pmcs=pool.pmcs[idx],
            p_node=pool.p_node[idx],
            p_cpu=pool.p_cpu[idx],
            p_mem=pool.p_mem[idx],
            restored=pool.restored[idx],
        )
