"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro list-workloads
    python -m repro experiment table5 [--full]
    python -m repro experiment fig2
    python -m repro ablation resmodel
    python -m repro campaign --out campaign.npz [--platform x86] [--seconds 120]
    python -m repro monitor --workload hpcg --out restored.csv
    python -m repro monitor --workload hpcg --out fleet.csv --fleet 8 \
        --chunk-size 64 --jsonl fleet.jsonl

``experiment`` regenerates one paper table/figure and prints it;
``campaign`` archives a full 96-benchmark measurement campaign;
``monitor`` trains a small model and writes restored estimates to CSV.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import io as repro_io
from .core import HighRPM, HighRPMConfig
from .eval import ablations as ab
from .eval import experiments as ex
from .eval import figures as fg
from .eval import frontier as fr
from .eval.harness import EvalSettings, build_campaign
from .hardware import NodeSimulator, get_platform
from .ml import score_report
from .sensors import IPMISensor
from .workloads import default_catalog

EXPERIMENTS: dict[str, Callable] = {
    "table5": ex.table5,
    "table6": ex.table6,
    "table7": ex.table7,
    "table8": ex.table8,
    "table9": ex.table9,
    "fig1": fg.fig1,
    "fig2": fg.fig2,
    "fig7": fg.fig7,
    "fig8": fg.fig8,
    "fig9": fg.fig9,
    "overhead": fg.overhead,
    "per-suite": ex.per_suite_breakdown,
    "chaos": ex.chaos_robustness,
    "calib": ex.calib_compensation,
    "frontier": fr.frontier_experiment,
}

ABLATIONS: dict[str, Callable] = {
    "resmodel": ab.ablation_resmodel,
    "postprocessing": ab.ablation_postprocessing,
    "finetune": ab.ablation_finetune,
    "lstm-depth": ab.ablation_lstm_depth,
    "trend-model": ab.ablation_trend_model,
}


def _settings(args) -> EvalSettings:
    settings = EvalSettings.full() if args.full else EvalSettings.quick()
    if getattr(args, "platform", None):
        settings = settings.on_platform(args.platform)
    return settings


def cmd_list_workloads(args) -> int:
    """Print the 96-benchmark catalog grouped by suite."""
    catalog = default_catalog(args.seed)
    for suite in catalog.suites:
        names = [w.name for w in catalog.suite(suite)]
        print(f"{suite} ({len(names)}):")
        for name in names:
            print(f"  {name}")
    return 0


def cmd_experiment(args) -> int:
    """Regenerate one paper table/figure and print it."""
    fn = EXPERIMENTS[args.name]
    result = fn(_settings(args))
    print(result.render())
    return 0


def cmd_ablation(args) -> int:
    """Run one design-choice ablation and print it."""
    fn = ABLATIONS[args.name]
    result = fn(_settings(args))
    print(result.render())
    return 0


def cmd_campaign(args) -> int:
    """Run and archive a full measurement campaign."""
    settings = _settings(args)
    if args.seconds:
        from dataclasses import replace

        settings = replace(settings, seconds_per_benchmark=args.seconds)
    campaign = build_campaign(settings)
    bundles = list(campaign.values())
    repro_io.save_campaign(args.out, bundles)
    total = sum(len(b) for b in bundles)
    print(f"archived {len(bundles)} bundles ({total} samples) to {args.out}")
    return 0


def _monitor_fleet(args, hr, spec, catalog) -> int:
    """Monitor one workload on N simulated nodes through the fleet path."""
    from .monitor import FleetMonitor, PowerMonitorService
    from .stream import JsonlSink

    sinks = [JsonlSink(args.jsonl)] if args.jsonl else []
    service = PowerMonitorService(hr, spec, sinks=sinks)
    bundles = {}
    for i in range(args.fleet):
        node_id = f"node{i}"
        service.register_node(
            node_id,
            sensor=IPMISensor(spec, interval_s=args.interval,
                              seed=args.seed + i),
        )
        bundles[node_id] = NodeSimulator(spec, seed=args.seed + i).run(
            catalog.get(args.workload), duration_s=args.seconds or 300
        )
    fleet = FleetMonitor(service, chunk_size=args.chunk_size or 256)
    results = fleet.observe_all(bundles)
    for sink in sinks:
        sink.close()
    first = next(iter(results))
    repro_io.export_monitor_csv(
        args.out, results[first].p_node, results[first].p_cpu,
        results[first].p_mem,
    )
    total = sum(len(r) for r in results.values())
    print(f"monitored {len(results)} nodes ({total} samples); "
          f"wrote {first}'s restored run to {args.out}")
    if args.jsonl:
        print(f"streamed per-chunk records to {args.jsonl}")
    for node_id, result in results.items():
        truth = bundles[node_id].node.values
        print(f"{node_id} [{result.mode}] "
              f"node: {score_report(truth, result.p_node)}")
    return 0


def cmd_serve(args) -> int:
    """Boot the sharded fleet daemon with an HTTP scrape surface."""
    import signal

    from .serve import FleetDaemon, ServeConfig

    fault_nodes = {}
    for item in args.fault or []:
        node_id, _, preset = item.partition("=")
        if not preset:
            print(f"--fault expects NODE=PRESET, got {item!r}", file=sys.stderr)
            return 2
        fault_nodes[node_id] = preset
    config = ServeConfig(
        nodes=args.nodes,
        shards=args.shards,
        port=args.port,
        host=args.host,
        chunk_size=args.chunk_size,
        runs=args.runs,
        run_seconds=args.seconds,
        workload=args.workload,
        platform=args.platform or "arm",
        interval_s=args.interval,
        seed=args.seed,
        online=not args.offline,
        processes=args.processes,
        ndjson=args.ndjson,
        gauges=args.gauges,
        label_shards=args.label_shards,
        fault_nodes=fault_nodes,
        train_seconds=args.train_seconds,
        lstm_iters=args.lstm_iters,
        srr_iters=args.srr_iters,
        gpu_nodes=args.gpu_nodes,
        gpu_workload=args.gpu_workload,
        governor=args.governor,
        governor_aggressiveness=args.governor_aggressiveness,
        governor_max_stride=args.governor_max_stride,
        governor_budget_fraction=args.governor_budget_fraction,
    )
    daemon = FleetDaemon(config)
    # Handlers go in before start(): a SIGTERM that lands while the model
    # is still training becomes a zero-round drain, not a dead process.
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: daemon.request_stop())
    print(f"training model ({config.train_seconds}s traces, "
          f"{config.lstm_iters} LSTM iters)...")
    daemon.start()
    host, port = daemon.address
    print(f"serving {config.nodes} node(s) across {config.shards} shard(s) "
          f"({'processes' if config.processes else 'threads'}) "
          f"on http://{host}:{port}")
    print("  GET /metrics   merged Prometheus exposition")
    print("  GET /healthz   per-shard health JSON")
    print("  GET /stream    live ndjson chunk records")
    try:
        # Bounded runs drain on their own; runs=0 serves until a signal
        # requests the drain. Either way wait() returns on full drain.
        while not daemon.wait(timeout=1.0):
            pass
    finally:
        daemon.stop()
    health = daemon.healthz()
    print(f"drained: status={health['status']} "
          f"shards={[s['state'] for s in health['shards'].values()]}")
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as fh:
            fh.write(daemon.metrics_text())
        print(f"final merged exposition written to {args.snapshot}")
    if config.ndjson:
        print(f"streamed records persisted to {config.ndjson}")
    return 0 if health["status"] != "failed" else 1


def cmd_monitor(args) -> int:
    """Train a small model, monitor one workload, export CSV."""
    catalog = default_catalog(args.seed)
    spec = get_platform(args.platform or "arm")
    sim = NodeSimulator(spec, seed=args.seed)
    train_names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
                   "hpcc_stream", "parsec_radix"]
    train = [sim.run(catalog.get(n), duration_s=120) for n in train_names]
    hr = HighRPM(HighRPMConfig(miss_interval=args.interval),
                 p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)
    hr.fit_initial(train)
    if args.fleet:
        return _monitor_fleet(args, hr, spec, catalog)
    bundle = sim.run(catalog.get(args.workload), duration_s=args.seconds or 300)
    readings = IPMISensor(spec, interval_s=args.interval, seed=args.seed).sample(bundle)
    result = hr.monitor_online(bundle.pmcs.matrix, readings)
    repro_io.export_monitor_csv(args.out, result.p_node, result.p_cpu, result.p_mem)
    print(f"wrote {len(result)} restored samples to {args.out}")
    if result.provenance is not None:
        from .core import PROV_MEASURED, PROV_MODEL_ONLY, PROV_RESTORED

        prov = result.provenance
        print(
            f"provenance: {int((prov == PROV_MEASURED).sum())} measured, "
            f"{int((prov == PROV_RESTORED).sum())} restored, "
            f"{int((prov == PROV_MODEL_ONLY).sum())} model-only"
        )
    print(f"node: {score_report(bundle.node.values, result.p_node)}")
    print(f"cpu : {score_report(bundle.cpu.values, result.p_cpu)}")
    print(f"mem : {score_report(bundle.mem.values, result.p_mem)}")
    if args.plot:
        from .eval.ascii_plot import strip_chart

        print()
        print(strip_chart({
            "true node": bundle.node.values,
            "restored": result.p_node,
            "cpu": result.p_cpu,
            "mem": result.p_mem,
        }))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="HighRPM reproduction command line"
    )
    parser.add_argument("--seed", type=int, default=2023)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-workloads", help="print the 96-benchmark catalog")
    p.set_defaults(func=cmd_list_workloads)

    p = sub.add_parser("experiment", help="regenerate one paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument("--full", action="store_true",
                   help="paper-sized protocol (slow)")
    p.add_argument("--platform", choices=("arm", "x86"))
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("ablation", help="run one design-choice ablation")
    p.add_argument("name", choices=sorted(ABLATIONS))
    p.add_argument("--full", action="store_true")
    p.add_argument("--platform", choices=("arm", "x86"))
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("campaign", help="archive a measurement campaign")
    p.add_argument("--out", required=True)
    p.add_argument("--full", action="store_true")
    p.add_argument("--platform", choices=("arm", "x86"))
    p.add_argument("--seconds", type=int, help="seconds per benchmark")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("monitor", help="train, monitor one workload, export CSV")
    p.add_argument("--workload", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--platform", choices=("arm", "x86"))
    p.add_argument("--interval", type=int, default=10)
    p.add_argument("--seconds", type=int)
    p.add_argument("--plot", action="store_true",
                   help="render terminal sparklines of the restored traces")
    p.add_argument("--fleet", type=int, metavar="N",
                   help="monitor N simulated nodes through the batched "
                        "fleet front-end (exports the first node's CSV)")
    p.add_argument("--chunk-size", type=int,
                   help="streaming chunk size for the fleet path "
                        "(default 256)")
    p.add_argument("--jsonl", metavar="PATH",
                   help="with --fleet: stream per-chunk JSONL records "
                        "to this file")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "serve",
        help="run the sharded fleet daemon (/metrics /healthz /stream)",
    )
    p.add_argument("--nodes", type=int, default=8,
                   help="simulated fleet size (default 8)")
    p.add_argument("--shards", type=int, default=2,
                   help="shard workers to split the fleet across (default 2)")
    p.add_argument("--port", type=int, default=9411,
                   help="HTTP bind port; 0 picks an ephemeral port "
                        "(default 9411)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--chunk-size", type=int, default=64,
                   help="streaming chunk size per shard (default 64)")
    p.add_argument("--runs", type=int, default=0,
                   help="observation rounds per node; 0 serves until "
                        "SIGTERM (default)")
    p.add_argument("--seconds", type=int, default=60,
                   help="simulated seconds per run (default 60)")
    p.add_argument("--workload", default="hpcc_fft")
    p.add_argument("--platform", choices=("arm", "x86"))
    p.add_argument("--interval", type=int, default=10,
                   help="IM sampling interval in seconds (default 10)")
    p.add_argument("--offline", action="store_true",
                   help="StaticTRR observation instead of DynamicTRR")
    p.add_argument("--processes", action="store_true",
                   help="host shards in worker processes instead of threads")
    p.add_argument("--ndjson", metavar="PATH",
                   help="persist every stream record to this JSONL file")
    p.add_argument("--gauges", choices=("last", "sum", "max"), default="last",
                   help="gauge collision policy for the /metrics merge")
    p.add_argument("--label-shards", action="store_true",
                   help="tag merged samples with shard=\"sK\" instead of "
                        "folding collisions into fleet totals")
    p.add_argument("--fault", action="append", metavar="NODE=PRESET",
                   help="wrap a node's sensor in a fault preset "
                        "(dead-feed, flaky-reads, dropout); repeatable")
    p.add_argument("--snapshot", metavar="PATH",
                   help="write the final merged exposition here on exit")
    p.add_argument("--train-seconds", type=int, default=60,
                   help="training trace length (default 60)")
    p.add_argument("--lstm-iters", type=int, default=20)
    p.add_argument("--srr-iters", type=int, default=100)
    p.add_argument("--gpu-nodes", type=int, default=0,
                   help="promote the last N fleet nodes to the GPU device "
                        "class (default 0)")
    p.add_argument("--gpu-workload", default="gemm",
                   help="accelerated workload for GPU-class nodes "
                        "(default gemm)")
    p.add_argument("--governor", action="store_true",
                   help="enable the adaptive sampling governor")
    p.add_argument("--governor-aggressiveness", type=float, default=0.5,
                   help="governor aggressiveness in [0, 1] (default 0.5)")
    p.add_argument("--governor-max-stride", type=int, default=4,
                   help="largest sampling stride the governor may emit "
                        "(default 4)")
    p.add_argument("--governor-budget-fraction", type=float, default=0.05,
                   help="pinned overhead budget fraction the governor "
                        "steers toward (default 0.05)")
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
