"""Co-location simulation: several jobs sharing one node.

The node's CPU activity is the (saturating) sum of the jobs' demands; when
demand exceeds the core budget every job is slowed proportionally
(contention). Each job keeps its own PMC view (per-cgroup counters, which
real kernels provide), while the node-level counter view is their sum —
exactly the aggregation a monitoring daemon sees.

Ground-truth per-job CPU power uses the standard attribution convention:
dynamic power proportional to each job's effective activity, static/idle
power divided equally among resident jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import ValidationError
from ..hardware.node import NodeSimulator
from ..hardware.platform import PlatformSpec
from ..types import PMCTrace, PowerTrace
from ..utils.rng import SeedSequenceFactory
from ..workloads.base import Workload


@dataclass(frozen=True)
class ColocatedBundle:
    """Ground truth for one co-located run.

    ``job_pmcs[j]`` is job j's own counter view; ``job_cpu_power[j]`` its
    attributed CPU power; ``node``/``cpu``/``mem``/``other``/``pmcs`` are
    the node-level aggregates (same shape as a normal bundle).
    """

    node: PowerTrace
    cpu: PowerTrace
    mem: PowerTrace
    other: PowerTrace
    pmcs: PMCTrace
    job_names: tuple[str, ...]
    job_pmcs: tuple[PMCTrace, ...]
    job_cpu_power: tuple[PowerTrace, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.job_names) != len(self.job_pmcs) or \
                len(self.job_names) != len(self.job_cpu_power):
            raise ValidationError("per-job fields must align")
        lengths = {len(self.node), len(self.cpu), len(self.pmcs)}
        lengths |= {len(p) for p in self.job_pmcs}
        if len(lengths) != 1:
            raise ValidationError("co-located traces must share a length")

    def __len__(self) -> int:
        return len(self.node)

    @property
    def n_jobs(self) -> int:
        return len(self.job_names)

    def check_attribution_sums(self, atol: float = 1e-6) -> bool:
        """Per-job CPU power must sum to the node's CPU power exactly."""
        total = np.sum([p.values for p in self.job_cpu_power], axis=0)
        return bool(np.allclose(total, self.cpu.values, atol=atol))


class ColocationSimulator:
    """Runs ``k`` workloads concurrently on one simulated node."""

    def __init__(self, spec: PlatformSpec, seed: int = 0) -> None:
        self.spec = spec
        self._node = NodeSimulator(spec, seed=seed)
        self._seeds = SeedSequenceFactory(seed).child("colocate")

    def run(
        self,
        workloads: Sequence[Workload],
        duration_s: int,
        run_id: int = 0,
    ) -> ColocatedBundle:
        """Execute the workloads together for ``duration_s`` seconds."""
        if len(workloads) < 2:
            raise ValidationError("co-location needs at least two workloads")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate workload names in the mix")
        tag = "+".join(names)

        # Per-job demanded activity.
        demands, mems = [], []
        for w in workloads:
            g = self._seeds.generator(f"act.{tag}.{w.name}.{run_id}")
            cpu, mem = w.synthesize(duration_s, g)
            demands.append(cpu)
            mems.append(mem)
        demand = np.vstack(demands)  # (k, n)
        mem_mix = np.clip(np.vstack(mems).sum(axis=0), 0.0, 1.0)

        # Contention: the node saturates at activity 1; every job is scaled
        # back proportionally when oversubscribed.
        total_demand = demand.sum(axis=0)
        scale = np.where(total_demand > 1.0, 1.0 / np.maximum(total_demand, 1e-9), 1.0)
        effective = demand * scale  # (k, n), sums to <= 1 (modulo epsilon)
        total_act = np.clip(effective.sum(axis=0), 0.0, 1.0)

        # Node power: blended hidden power scale, weighted by contribution.
        weights = effective.mean(axis=1)
        weights = weights / max(weights.sum(), 1e-9)
        cpu_scale = float(np.sum(
            [w.traits.cpu_power_scale * wt for w, wt in zip(workloads, weights)]
        ))
        mem_scale = float(np.sum(
            [w.traits.mem_power_scale * wt for w, wt in zip(workloads, weights)]
        ))
        rng_cpu = self._seeds.generator(f"cpu.{tag}.{run_id}")
        condition = self._node._condition(
            duration_s, self._seeds.generator(f"cond.{tag}.{run_id}")
        )
        p_cpu = self._node.cpu_model.power(
            total_act, self.spec.default_freq_ghz, rng_cpu,
            power_scale=cpu_scale, condition=condition,
        )
        rng_rest = self._seeds.generator(f"rest.{tag}.{run_id}")
        p_mem = self._node.mem_model.power(
            mem_mix, rng_rest, power_scale=mem_scale, condition=condition
        )
        p_other = self._node._other_power(duration_s, rng_rest)
        p_node = p_cpu + p_mem + p_other

        # Ground-truth attribution: static shared equally, dynamic by
        # effective-activity share.
        k = len(workloads)
        rel = self.spec.default_freq_ghz / self.spec.f_max_ghz
        static = self.spec.cpu_idle_w * (0.4 + 0.6 * rel)
        dynamic = np.maximum(p_cpu - static, 0.0)
        share = effective / np.maximum(total_act, 1e-9)
        job_cpu = [
            PowerTrace(static / k + dynamic * share[j], 1.0, f"cpu.{names[j]}")
            for j in range(k)
        ]
        # Renormalise the tiny clamp slack so the invariant is exact.
        total_attr = np.sum([p.values for p in job_cpu], axis=0)
        correction = p_cpu / np.maximum(total_attr, 1e-9)
        job_cpu = [
            PowerTrace(p.values * correction, 1.0, p.label) for p in job_cpu
        ]

        # Per-job and aggregated counter views.
        job_pmcs = []
        for j, w in enumerate(workloads):
            g = self._seeds.generator(f"pmc.{tag}.{w.name}.{run_id}")
            matrix = self._node.pmu_model.counters(
                effective[j], np.clip(mems[j], 0.0, 1.0),
                self.spec.default_freq_ghz, w.traits, g,
            )
            job_pmcs.append(PMCTrace(matrix, sample_rate_hz=1.0))
        node_pmcs = PMCTrace(
            np.sum([p.matrix for p in job_pmcs], axis=0), sample_rate_hz=1.0
        )

        return ColocatedBundle(
            node=PowerTrace(p_node, 1.0, "node"),
            cpu=PowerTrace(p_cpu, 1.0, "cpu"),
            mem=PowerTrace(p_mem, 1.0, "mem"),
            other=PowerTrace(p_other, 1.0, "other"),
            pmcs=node_pmcs,
            job_names=tuple(names),
            job_pmcs=tuple(job_pmcs),
            job_cpu_power=tuple(job_cpu),
            metadata={"effective_activity": effective},
        )
