"""Per-job power attribution on shared nodes (disaggregation extension).

HighRPM restores *component* power; operators billing or scheduling jobs
need *per-job* power on nodes that run several jobs at once. This package
extends the methodology one level further down, the same way SRR extends
it from node to component:

* :class:`ColocationSimulator` — runs several workloads on one node with
  contention (activities saturate), producing per-job counter views and a
  defensible per-job power ground truth (dynamic power proportional to
  each job's effective activity; static power shared equally — the
  standard attribution convention RAPL-based tools use);
* :class:`PerJobAttributor` — trained on solo runs, it estimates each
  job's dynamic demand from its own counters and distributes the restored
  CPU power accordingly. The node/component readings pin the total, so
  per-job errors cannot accumulate into the node bill.
"""

from .colocate import ColocatedBundle, ColocationSimulator
from .model import PerJobAttributor

__all__ = ["ColocatedBundle", "ColocationSimulator", "PerJobAttributor"]
