"""Per-job attribution model.

Training uses *solo* instrumented runs — the same campaign HighRPM's
initial learning stage already collects: a regressor learns each row's
dynamic CPU power (power above the platform's static floor) from the job's
own counters. At attribution time each resident job's counters give a
dynamic-demand estimate; the restored node CPU power (whose total is
trusted — it came from IM via TRR + SRR) is then split with static power
shared equally and dynamic power proportional to demand.

Because the split always re-normalises to the restored total, per-job
errors are zero-sum: a watt wrongly credited to one job is debited from
its neighbours, never invented.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..hardware.platform import PlatformSpec
from ..ml.ensemble import GradientBoostingRegressor
from ..types import TraceBundle
from ..utils.validation import check_1d, check_2d
from .colocate import ColocatedBundle


class PerJobAttributor:
    """Distributes restored CPU power over co-resident jobs."""

    def __init__(self, spec: PlatformSpec, demand_model=None) -> None:
        self.spec = spec
        self._model = demand_model or GradientBoostingRegressor(
            n_estimators=30, max_depth=3, learning_rate=0.2, random_state=0
        )
        self._fitted = False

    @property
    def static_w(self) -> float:
        """Static CPU power at the default frequency (shared equally)."""
        rel = self.spec.default_freq_ghz / self.spec.f_max_ghz
        return float(self.spec.cpu_idle_w * (0.4 + 0.6 * rel))

    def fit(self, solo_bundles: Sequence[TraceBundle]) -> "PerJobAttributor":
        """Learn counters → dynamic CPU power from solo instrumented runs."""
        if not solo_bundles:
            raise ValidationError("need at least one solo bundle")
        X = np.vstack([b.pmcs.matrix for b in solo_bundles])
        y = np.concatenate([
            np.maximum(b.cpu.values - self.static_w, 0.0) for b in solo_bundles
        ])
        self._model.fit(X, y)
        self._fitted = True
        return self

    def demand(self, pmcs: np.ndarray) -> np.ndarray:
        """Estimated dynamic CPU power demand for one job's counter rows."""
        if not self._fitted:
            raise NotFittedError("PerJobAttributor.demand before fit")
        return np.maximum(self._model.predict(check_2d(pmcs, "pmcs")), 0.0)

    def attribute(
        self,
        job_pmcs: Sequence[np.ndarray],
        p_cpu: np.ndarray,
    ) -> list[np.ndarray]:
        """Per-job CPU power given each job's counters and the node total.

        ``p_cpu`` is the (restored) node CPU power at 1 Sa/s.
        """
        if not self._fitted:
            raise NotFittedError("PerJobAttributor.attribute before fit")
        if len(job_pmcs) < 1:
            raise ValidationError("no jobs to attribute")
        p_cpu = check_1d(p_cpu, "p_cpu")
        demands = [self.demand(p) for p in job_pmcs]
        for d in demands:
            if d.shape != p_cpu.shape:
                raise ValidationError("per-job counters must match p_cpu length")
        k = len(demands)
        total_demand = np.sum(demands, axis=0)
        dynamic = np.maximum(p_cpu - self.static_w, 0.0)
        static_each = (p_cpu - dynamic) / k
        out = []
        for d in demands:
            share = np.where(total_demand > 1e-9, d / np.maximum(total_demand, 1e-9),
                             1.0 / k)
            out.append(static_each + dynamic * share)
        return out

    def attribute_bundle(self, bundle: ColocatedBundle,
                         p_cpu: "np.ndarray | None" = None) -> list[np.ndarray]:
        """Convenience: attribute a simulated co-located run.

        ``p_cpu`` defaults to the bundle's true CPU power; pass a restored
        estimate to exercise the full monitoring pipeline.
        """
        target = bundle.cpu.values if p_cpu is None else p_cpu
        return self.attribute([p.matrix for p in bundle.job_pmcs], target)
