"""Campaign persistence: save/load trace bundles and sparse readings.

Measurement campaigns are expensive on real hardware, so the library can
archive them. The format is a plain ``.npz`` (one per bundle, or one per
campaign with name-spaced keys) — no pickles, so archives are portable and
safe to share. Monitoring logs additionally export to CSV for spreadsheet
consumption.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

import numpy as np

from .errors import ValidationError
from .sensors.base import SparseReadings
from .types import PMCTrace, PowerTrace, TraceBundle

_FORMAT_VERSION = 1


def _bundle_arrays(bundle: TraceBundle, prefix: str = "") -> dict[str, np.ndarray]:
    return {
        f"{prefix}node": np.asarray(bundle.node.values),
        f"{prefix}cpu": np.asarray(bundle.cpu.values),
        f"{prefix}mem": np.asarray(bundle.mem.values),
        f"{prefix}other": np.asarray(bundle.other.values),
        f"{prefix}pmcs": np.asarray(bundle.pmcs.matrix),
        f"{prefix}events": np.array(bundle.pmcs.events, dtype=np.str_),
        f"{prefix}meta": np.array(
            [bundle.workload, bundle.platform, str(bundle.sample_rate_hz)],
            dtype=np.str_,
        ),
    }


def save_bundle(path: str, bundle: TraceBundle) -> None:
    """Archive one bundle to ``path`` (``.npz`` appended if missing)."""
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez_compressed(
        path, format_version=np.array([_FORMAT_VERSION]), **_bundle_arrays(bundle)
    )


def _bundle_from(arrays: Mapping[str, np.ndarray], prefix: str = "") -> TraceBundle:
    try:
        meta = arrays[f"{prefix}meta"]
        rate = float(str(meta[2]))
        events = tuple(str(e) for e in arrays[f"{prefix}events"])
        return TraceBundle(
            node=PowerTrace(arrays[f"{prefix}node"], rate, "node"),
            cpu=PowerTrace(arrays[f"{prefix}cpu"], rate, "cpu"),
            mem=PowerTrace(arrays[f"{prefix}mem"], rate, "mem"),
            other=PowerTrace(arrays[f"{prefix}other"], rate, "other"),
            pmcs=PMCTrace(arrays[f"{prefix}pmcs"], events, rate),
            workload=str(meta[0]),
            platform=str(meta[1]),
        )
    except KeyError as exc:
        raise ValidationError(f"archive is missing key {exc}") from exc


def load_bundle(path: str) -> TraceBundle:
    """Load one bundle archived by :func:`save_bundle`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path += ".npz"
    with np.load(path, allow_pickle=False) as arrays:
        version = int(arrays["format_version"][0])
        if version > _FORMAT_VERSION:
            raise ValidationError(
                f"archive format v{version} is newer than this library (v{_FORMAT_VERSION})"
            )
        return _bundle_from(arrays)


def save_campaign(path: str, bundles: Sequence[TraceBundle]) -> None:
    """Archive a whole campaign (bundles keyed by position) to one file."""
    if not bundles:
        raise ValidationError("cannot archive an empty campaign")
    if not path.endswith(".npz"):
        path += ".npz"
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION]),
        "n_bundles": np.array([len(bundles)]),
    }
    for i, bundle in enumerate(bundles):
        arrays.update(_bundle_arrays(bundle, prefix=f"b{i}."))
    np.savez_compressed(path, **arrays)


def load_campaign(path: str) -> list[TraceBundle]:
    """Load a campaign archived by :func:`save_campaign`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path += ".npz"
    with np.load(path, allow_pickle=False) as arrays:
        n = int(arrays["n_bundles"][0])
        return [_bundle_from(arrays, prefix=f"b{i}.") for i in range(n)]


def save_readings(path: str, readings: SparseReadings) -> None:
    """Archive sparse IM readings."""
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION]),
        indices=readings.indices,
        values=readings.values,
        shape=np.array([readings.interval_s, readings.n_dense]),
    )


def load_readings(path: str) -> SparseReadings:
    """Load readings archived by :func:`save_readings`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path += ".npz"
    with np.load(path, allow_pickle=False) as arrays:
        interval, n_dense = (int(v) for v in arrays["shape"])
        return SparseReadings(
            indices=arrays["indices"],
            values=arrays["values"],
            interval_s=interval,
            n_dense=n_dense,
        )


def export_monitor_csv(path: str, p_node, p_cpu, p_mem,
                       sample_rate_hz: float = 1.0) -> None:
    """Write restored estimates as CSV: t_s, p_node_w, p_cpu_w, p_mem_w."""
    p_node = np.asarray(p_node, dtype=np.float64)
    p_cpu = np.asarray(p_cpu, dtype=np.float64)
    p_mem = np.asarray(p_mem, dtype=np.float64)
    if not (p_node.shape == p_cpu.shape == p_mem.shape):
        raise ValidationError("estimate arrays must share a shape")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t_s", "p_node_w", "p_cpu_w", "p_mem_w"])
        for i in range(p_node.shape[0]):
            writer.writerow([
                f"{i / sample_rate_hz:.3f}", f"{p_node[i]:.4f}",
                f"{p_cpu[i]:.4f}", f"{p_mem[i]:.4f}",
            ])


def import_monitor_csv(path: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read back a CSV written by :func:`export_monitor_csv`."""
    node, cpu, mem = [], [], []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"p_node_w", "p_cpu_w", "p_mem_w"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValidationError(f"CSV must have columns {sorted(required)}")
        for row in reader:
            node.append(float(row["p_node_w"]))
            cpu.append(float(row["p_cpu_w"]))
            mem.append(float(row["p_mem_w"]))
    return np.asarray(node), np.asarray(cpu), np.asarray(mem)
