"""Composition and sensor wrapping for fault models.

:class:`FaultInjector` applies an ordered list of :class:`FaultModel`\\ s to
a :class:`~repro.sensors.SparseReadings` stream. Determinism contract: two
injectors built with the same ``(faults, seed)`` produce bit-identical
output for the same call sequence — every model gets its own named child
generator from a :class:`~repro.utils.rng.SeedSequenceFactory`, keyed by
call number, position and model name, so adding a model never perturbs the
streams the other models see.

:class:`FaultySensor` puts an injector behind the existing ``sample()``
interface of any IM sensor (:class:`~repro.sensors.IPMISensor` or anything
shaped like it), optionally failing whole reads transiently;
:class:`FaultyPMCCollector` and :class:`FaultyRAPLEmulator` do the same for
the dense acquisition paths. None of them ever mutates the wrapped sensor's
output arrays or the ground-truth bundle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SensorOutageError, TransientSensorError, ValidationError
from ..sensors.base import SparseReadings
from ..utils.rng import SeedSequenceFactory
from ..utils.validation import check_2d
from .models import FaultModel


class FaultInjector:
    """Apply an ordered fault-model chain to sparse reading streams."""

    def __init__(self, faults: Sequence[FaultModel], seed: int = 0) -> None:
        self.faults = tuple(faults)
        for f in self.faults:
            if not isinstance(f, FaultModel):
                raise ValidationError(f"not a FaultModel: {f!r}")
        self._factory = SeedSequenceFactory(int(seed))
        self._calls = 0

    def inject(self, readings: SparseReadings) -> SparseReadings:
        """Faulted copy of ``readings``; raises on a whole-stream outage."""
        idx = readings.indices
        vals = readings.values
        call = self._calls
        self._calls += 1
        for pos, fault in enumerate(self.faults):
            rng = self._factory.generator(f"call{call}.{pos}.{fault.name}")
            idx, vals = fault.apply(idx, vals, rng, readings.n_dense)
            if idx.shape[0] == 0:
                raise SensorOutageError(
                    f"fault {fault.name!r} dropped every reading of the run"
                )
        return SparseReadings(
            indices=idx,
            values=vals,
            interval_s=readings.interval_s,
            n_dense=readings.n_dense,
        )


class FaultySensor:
    """An IM sensor with a fault chain behind the same ``sample()`` call.

    ``fail_prob`` models transient whole-read failures (BMC busy, IPMI
    timeout): with that probability ``sample`` raises
    :class:`~repro.errors.TransientSensorError` before touching the wrapped
    sensor, which is what the service's retry-with-backoff path exercises.
    ``fail_first`` fails that many leading ``sample()`` calls
    deterministically — the reproducible variant for retry tests and chaos
    scenarios. Attributes not defined here (``interval_s``, ``spec``, ...)
    are delegated to the wrapped sensor.
    """

    def __init__(
        self,
        sensor,
        faults: Sequence[FaultModel] = (),
        seed: int = 0,
        fail_prob: float = 0.0,
        fail_first: int = 0,
    ) -> None:
        if not 0.0 <= fail_prob < 1.0:
            raise ValidationError("fail_prob must lie in [0, 1)")
        if fail_first < 0:
            raise ValidationError("fail_first must be >= 0")
        self.sensor = sensor
        self.injector = FaultInjector(faults, seed=seed)
        self.fail_prob = float(fail_prob)
        self._fail_remaining = int(fail_first)
        self._fail_rng = SeedSequenceFactory(int(seed)).generator("transient-failures")

    def __getattr__(self, name: str):
        return getattr(self.sensor, name)

    def sample(self, bundle, offset: int = 0) -> SparseReadings:
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            raise TransientSensorError("sensor read timed out (injected, scripted)")
        if self.fail_prob > 0.0 and self._fail_rng.random() < self.fail_prob:
            raise TransientSensorError("sensor read timed out (injected)")
        return self.injector.inject(self.sensor.sample(bundle, offset=offset))


def apply_dense_faults(
    matrix: np.ndarray,
    rng: np.random.Generator,
    stuck_windows: Sequence[tuple[int, int]] = (),
    spike_prob: float = 0.0,
    spike_scale: float = 3.0,
) -> np.ndarray:
    """Dense-stream variants of the fault vocabulary, on a fresh array.

    ``stuck_windows`` holds ``(start_s, duration_s)`` pairs whose rows are
    frozen at the last pre-window row; ``spike_prob`` multiplies individual
    rows by ``spike_scale`` (counter overcount glitches).
    """
    out = np.array(matrix)  # fresh writable copy, never a view
    n = out.shape[0]
    for start, duration in stuck_windows:
        start = int(start)
        stop = min(n, start + int(duration))
        if start < 0 or duration <= 0:
            raise ValidationError("stuck window needs start>=0 and duration>0")
        if start >= n or stop <= start:
            continue
        out[start:stop] = out[max(start - 1, 0)]
    if spike_prob > 0.0:
        hit = rng.random(n) < spike_prob
        out[hit] = out[hit] * float(spike_scale)
    return out


class FaultyPMCCollector:
    """A :class:`~repro.sensors.PMCCollector` with acquisition faults."""

    def __init__(
        self,
        collector,
        stuck_windows: Sequence[tuple[int, int]] = (),
        spike_prob: float = 0.0,
        spike_scale: float = 3.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= spike_prob < 1.0:
            raise ValidationError("spike_prob must lie in [0, 1)")
        self.collector = collector
        self.stuck_windows = tuple((int(s), int(d)) for s, d in stuck_windows)
        self.spike_prob = float(spike_prob)
        self.spike_scale = float(spike_scale)
        self._rng_factory = SeedSequenceFactory(int(seed))
        self._calls = 0

    def collect(self, bundle):
        trace = self.collector.collect(bundle)
        rng = self._rng_factory.generator(f"pmc.call{self._calls}")
        self._calls += 1
        matrix = apply_dense_faults(
            check_2d(trace.matrix, "pmc matrix"),
            rng,
            stuck_windows=self.stuck_windows,
            spike_prob=self.spike_prob,
            spike_scale=self.spike_scale,
        )
        return type(trace)(matrix, trace.events, trace.sample_rate_hz)


class FaultyRAPLEmulator:
    """A :class:`~repro.sensors.RAPLEmulator` whose watt traces glitch.

    Faults are applied to the *derived power traces* (the post-diff view a
    perf collector hands upward), matching where OCC-style stalls surface
    in practice: the counter freezes, so the differentiated power sticks.
    """

    def __init__(
        self,
        emulator,
        stuck_windows: Sequence[tuple[int, int]] = (),
        spike_prob: float = 0.0,
        spike_scale: float = 3.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= spike_prob < 1.0:
            raise ValidationError("spike_prob must lie in [0, 1)")
        self.emulator = emulator
        self.stuck_windows = tuple((int(s), int(d)) for s, d in stuck_windows)
        self.spike_prob = float(spike_prob)
        self.spike_scale = float(spike_scale)
        self._rng_factory = SeedSequenceFactory(int(seed))
        self._calls = 0

    def measure(self, bundle):
        pkg, ram = self.emulator.measure(bundle)
        out = []
        for trace in (pkg, ram):
            rng = self._rng_factory.generator(f"rapl.call{self._calls}.{trace.label}")
            faulted = apply_dense_faults(
                trace.values[:, None],
                rng,
                stuck_windows=self.stuck_windows,
                spike_prob=self.spike_prob,
                spike_scale=self.spike_scale,
            )[:, 0]
            out.append(trace.with_values(faulted))
        self._calls += 1
        return tuple(out)
