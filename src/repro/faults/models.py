"""Fault models over sparse sensor streams.

Each model is a pure transformation of one reading stream
``(indices, values)`` on a dense 1 Sa/s timebase of ``n_dense`` samples:
``apply`` returns **new** arrays and never writes through its inputs, so a
stream can be re-injected under different seeds and the clean stream stays
intact. Stochastic models draw only from the generator they are handed —
composition order and seeding are owned by
:class:`repro.faults.inject.FaultInjector`.

The vocabulary covers the failure modes reported for real IM channels:

* :class:`OutageWindow` — a full BMC outage for a contiguous window
  (firmware update, fabric partition);
* :class:`RandomDropout` — i.i.d. lost readings (congestion, the paper's
  §6.4.6 jitter experiment);
* :class:`StuckAt` — the power chip reports a frozen accumulator for a
  window while timestamps keep advancing;
* :class:`SpikeOutlier` — occasional wild values from readout glitches
  (caught downstream by plausibility gating);
* :class:`ClockJitter` — reading timestamps wander around the nominal
  tick, optionally on top of a systematic clock skew;
* :class:`DelayedArrival` — readings arrive late and are attributed to a
  later tick (stale value at a shifted timestamp);
* :class:`GainDrift` — an affine miscalibration (gain × truth + bias)
  whose coefficients may drift linearly across the run — the structured
  error the calibration layer (:mod:`repro.calib`) estimates and
  corrects.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.validation import check_fraction, check_positive


def _dedupe_sorted(indices: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort by index and keep the first reading at each duplicate index."""
    order = np.argsort(indices, kind="stable")
    idx = indices[order]
    vals = values[order]
    keep = np.ones(idx.shape[0], dtype=bool)
    keep[1:] = idx[1:] != idx[:-1]
    return idx[keep], vals[keep]


class FaultModel:
    """Base class: a named, seeded transformation of one reading stream."""

    #: Stable identifier used for per-model RNG sub-streams and reports.
    name: str = "fault"

    def apply(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        rng: np.random.Generator,
        n_dense: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the faulted ``(indices, values)`` as fresh arrays."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = {k: v for k, v in vars(self).items() if not k.startswith("_")}
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"


class OutageWindow(FaultModel):
    """Drop every reading inside ``[start_s, start_s + duration_s)``."""

    name = "outage"

    def __init__(self, start_s: int, duration_s: int) -> None:
        self.start_s = int(start_s)
        self.duration_s = int(duration_s)
        if self.start_s < 0:
            raise ValidationError("start_s must be >= 0")
        check_positive(self.duration_s, "duration_s")

    def apply(self, indices, values, rng, n_dense):
        stop = self.start_s + self.duration_s
        keep = (indices < self.start_s) | (indices >= stop)
        return indices[keep].copy(), values[keep].copy()


class RandomDropout(FaultModel):
    """Drop each reading independently with probability ``prob``."""

    name = "dropout"

    def __init__(self, prob: float) -> None:
        self.prob = check_fraction(prob, "prob")

    def apply(self, indices, values, rng, n_dense):
        keep = rng.random(indices.shape[0]) >= self.prob
        return indices[keep].copy(), values[keep].copy()


class StuckAt(FaultModel):
    """Freeze the reported value over ``[start_s, start_s + duration_s)``.

    Readings inside the window repeat the last value reported before it (or
    the first in-window value when the outage starts the stream) — the
    classic stalled-accumulator glitch: timestamps advance, power does not.
    """

    name = "stuck"

    def __init__(self, start_s: int, duration_s: int) -> None:
        self.start_s = int(start_s)
        self.duration_s = int(duration_s)
        if self.start_s < 0:
            raise ValidationError("start_s must be >= 0")
        check_positive(self.duration_s, "duration_s")

    def apply(self, indices, values, rng, n_dense):
        stop = self.start_s + self.duration_s
        in_window = (indices >= self.start_s) & (indices < stop)
        vals = values.copy()
        if in_window.any():
            before = np.flatnonzero(indices < self.start_s)
            anchor = vals[before[-1]] if before.size else vals[np.flatnonzero(in_window)[0]]
            vals[in_window] = anchor
        return indices.copy(), vals


class SpikeOutlier(FaultModel):
    """Replace readings with implausible spikes with probability ``prob``.

    Spikes are ``± magnitude_w`` around the true value (sign drawn per
    spike), floored at zero like any physical power readout.
    """

    name = "spike"

    def __init__(self, prob: float, magnitude_w: float = 200.0) -> None:
        self.prob = check_fraction(prob, "prob")
        self.magnitude_w = float(magnitude_w)
        check_positive(self.magnitude_w, "magnitude_w")

    def apply(self, indices, values, rng, n_dense):
        hit = rng.random(values.shape[0]) < self.prob
        sign = np.where(rng.random(values.shape[0]) < 0.5, -1.0, 1.0)
        vals = values.copy()
        vals[hit] = np.maximum(vals[hit] + sign[hit] * self.magnitude_w, 0.0)
        return indices.copy(), vals


class ClockJitter(FaultModel):
    """Shift each reading's timestamp by up to ``± max_shift_s`` ticks.

    ``drift_s`` adds a *systematic* clock skew on top of the random
    wander: every timestamp lands ``drift_s`` ticks late (negative =
    early) — the stale-clock error the calibration layer's lag estimator
    exists to recover. Shifted indices are clipped to the trace and
    de-duplicated (first reading at a tick wins), so the output is always
    a valid stream.
    """

    name = "jitter"

    def __init__(self, max_shift_s: int, drift_s: int = 0) -> None:
        self.max_shift_s = int(max_shift_s)
        check_positive(self.max_shift_s, "max_shift_s")
        self.drift_s = int(drift_s)

    def apply(self, indices, values, rng, n_dense):
        shift = rng.integers(-self.max_shift_s, self.max_shift_s + 1, size=indices.shape[0])
        idx = np.clip(indices + shift + self.drift_s, 0, n_dense - 1)
        return _dedupe_sorted(idx, values.copy())


class GainDrift(FaultModel):
    """Affine sensor miscalibration, optionally drifting across the run.

    Reported values become ``gain(i) * value + bias_w(i)`` (floored at
    zero like any physical readout) where the coefficients interpolate
    linearly from their ``*_start`` to ``*_end`` values across the dense
    timebase ``[0, n_dense)``. With the ``*_end`` parameters omitted the
    coefficients are constant — a pure affine bias (mis-set shunt gain,
    offset error); with them, a slow drift (thermal gain wander, ageing).

    Deterministic by construction: the schedule depends only on the
    parameters and the reading timestamps, so the harness can inject
    exactly the error the calibrator (:mod:`repro.calib`) claims to
    correct and check the recovered coefficients against these.
    """

    name = "gain_drift"

    def __init__(
        self,
        gain_start: float = 1.0,
        gain_end: "float | None" = None,
        bias_start_w: float = 0.0,
        bias_end_w: "float | None" = None,
    ) -> None:
        self.gain_start = float(gain_start)
        self.gain_end = float(gain_end if gain_end is not None else gain_start)
        check_positive(self.gain_start, "gain_start")
        check_positive(self.gain_end, "gain_end")
        self.bias_start_w = float(bias_start_w)
        self.bias_end_w = float(
            bias_end_w if bias_end_w is not None else bias_start_w
        )

    def coefficients_at(
        self, indices: np.ndarray, n_dense: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``(gain, bias)`` schedule at the given dense indices."""
        span = max(int(n_dense) - 1, 1)
        frac = np.asarray(indices, dtype=np.float64) / span
        gain = self.gain_start + (self.gain_end - self.gain_start) * frac
        bias = self.bias_start_w + (self.bias_end_w - self.bias_start_w) * frac
        return gain, bias

    def apply(self, indices, values, rng, n_dense):
        gain, bias = self.coefficients_at(indices, n_dense)
        return indices.copy(), np.maximum(gain * values + bias, 0.0)


class DelayedArrival(FaultModel):
    """Deliver readings ``delay_s`` ticks late with probability ``prob``.

    The *value* is unchanged (it is the stale measurement) but it is
    attributed to the arrival tick — the §6.4.6 ragged-interval artefact.
    """

    name = "delay"

    def __init__(self, delay_s: int, prob: float = 1.0) -> None:
        self.delay_s = int(delay_s)
        check_positive(self.delay_s, "delay_s")
        if not 0.0 < prob <= 1.0:
            raise ValidationError("prob must lie in (0, 1]")
        self.prob = float(prob)

    def apply(self, indices, values, rng, n_dense):
        late = rng.random(indices.shape[0]) < self.prob
        idx = indices + np.where(late, self.delay_s, 0)
        keep = idx < n_dense  # a reading delayed past the run is lost
        return _dedupe_sorted(idx[keep], values[keep].copy())
