"""Golden traces for the end-to-end monitor regression fixture.

One fixed-seed reference service (the chaos harness's smoke-sized
``reference_run``) observes the same test run twice: through a healthy IM
feed and through a feed with a full mid-run BMC outage. Everything
downstream of the seeds is deterministic, so the restored traces are a
behavioural fingerprint of the whole stack — simulator, sensor, fault
chain, gating, restoration, provenance.

``scripts/make_golden_monitor.py`` stores them under
``tests/fixtures/golden_monitor.npz``; ``tests/test_golden_monitor.py``
regenerates and compares.
"""

from __future__ import annotations

import numpy as np

from ..hardware.platform import get_platform
from ..sensors.ipmi import IPMISensor
from .chaos import ChaosSettings, reference_run
from .inject import FaultySensor
from .models import OutageWindow

#: Seed offsets for the two golden sensors (relative to ``settings.seed``).
_HEALTHY_SENSOR_SEED = 500
_OUTAGE_SENSOR_SEED = 501
_OUTAGE_CHAIN_SEED = 502


def golden_outage_window(test_seconds: int) -> tuple[int, int]:
    """The fixture's outage span: the middle third of the run."""
    start = test_seconds // 3
    return start, 2 * test_seconds // 3


def golden_traces(reference=None) -> dict[str, np.ndarray]:
    """Compute the golden healthy/outage traces (smoke-sized settings).

    ``reference`` may carry an existing ``(service, bundle)`` pair from
    :func:`~repro.faults.chaos.reference_run` with smoke settings — the
    test suite passes its shared one to skip retraining. Node names are
    chosen to not collide with the chaos or resilience suites.
    """
    settings = ChaosSettings.smoke()
    service, bundle = reference if reference is not None else reference_run(settings)
    spec = get_platform(settings.platform)
    start, stop = golden_outage_window(settings.test_seconds)

    service.register_node(
        "golden-healthy",
        sensor=IPMISensor(spec, seed=settings.seed + _HEALTHY_SENSOR_SEED),
    )
    service.register_node(
        "golden-outage",
        sensor=FaultySensor(
            IPMISensor(spec, seed=settings.seed + _OUTAGE_SENSOR_SEED),
            faults=(OutageWindow(start, stop - start),),
            seed=settings.seed + _OUTAGE_CHAIN_SEED,
        ),
    )
    healthy = service.observe_run("golden-healthy", bundle, online=True)
    outage = service.observe_run("golden-outage", bundle, online=True)

    traces: dict[str, np.ndarray] = {"truth_p_node": bundle.node.values}
    for name, result in (("healthy", healthy), ("outage", outage)):
        traces[f"{name}_p_node"] = result.p_node
        traces[f"{name}_p_cpu"] = result.p_cpu
        traces[f"{name}_p_mem"] = result.p_mem
        traces[f"{name}_provenance"] = result.provenance
    return traces
