"""Chaos harness: sweep fault scenarios through the monitor service.

One trained :class:`~repro.monitor.PowerMonitorService` faces a battery of
fault scenarios — one node per scenario, each wrapped in a
:class:`FaultySensor` with a different fault chain — and the harness
reports restoration accuracy (node-power MAPE against the simulator's
ground truth) per scenario, split into the fault window and the healthy
remainder of the run. This is the §6.4.6 robustness experiment generalised
to the full fault vocabulary, and the regression gate for the graceful
degradation paths in :mod:`repro.monitor.resilience`.

Run it directly::

    python -m repro.faults.chaos [--smoke] [--output report.json]
    python -m repro.faults.chaos --scenario outage --scenario spikes

or through the eval layer (``python -m repro experiment chaos``). Every
piece is seeded; two runs with the same settings produce the same report.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from ..core import PROV_MEASURED, HighRPM, HighRPMConfig
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..ml.metrics import mape
from ..monitor import PowerMonitorService, ResiliencePolicy
from ..obs import MetricsRegistry, render_overhead, use_registry
from ..sensors.ipmi import IPMISensor
from ..workloads.catalog import default_catalog
from .inject import FaultySensor
from .models import (
    ClockJitter,
    DelayedArrival,
    FaultModel,
    OutageWindow,
    RandomDropout,
    SpikeOutlier,
    StuckAt,
)


@dataclass(frozen=True)
class ChaosSettings:
    """Training/evaluation sizes for one chaos sweep."""

    platform: str = "arm"
    train_benchmarks: tuple[str, ...] = (
        "spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream",
    )
    test_benchmark: str = "hpcc_fft"
    train_seconds: int = 120
    test_seconds: int = 160
    lstm_iters: int = 200
    srr_iters: int = 1500
    seed: int = 7
    online: bool = True

    @staticmethod
    def smoke() -> "ChaosSettings":
        """CI-sized sweep: minutes, not tens of minutes."""
        return ChaosSettings(
            train_benchmarks=("spec_gcc", "hpcc_hpl", "hpcc_stream"),
            train_seconds=100,
            test_seconds=150,
            lstm_iters=150,
            srr_iters=1000,
        )

    @staticmethod
    def tiny() -> "ChaosSettings":
        """Seconds-sized settings for demos that only need a *live* service
        (``python -m repro.obs.dump``, the ``repro-bench`` overhead probe) —
        the model is under-trained and its accuracy is meaningless."""
        return ChaosSettings(
            train_benchmarks=("spec_gcc", "hpcc_stream"),
            train_seconds=60,
            test_seconds=60,
            lstm_iters=20,
            srr_iters=100,
        )


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault configuration applied to a fresh node."""

    name: str
    faults: tuple[FaultModel, ...] = ()
    fail_prob: float = 0.0
    fail_first: int = 0
    #: Dense-sample window ``[start, stop)`` the faults act on, for the
    #: windowed MAPE split; None means the whole run.
    window: "tuple[int, int] | None" = None


def default_scenarios(test_seconds: int) -> tuple[ChaosScenario, ...]:
    """One scenario per fault model, plus healthy and dead-feed extremes."""
    dur = max(test_seconds // 4, 20)
    start = (test_seconds - dur) // 2
    window = (start, start + dur)
    return (
        ChaosScenario("healthy"),
        ChaosScenario("outage", (OutageWindow(start, dur),), window=window),
        ChaosScenario("dropout", (RandomDropout(0.3),)),
        ChaosScenario("stuck", (StuckAt(start, dur),), window=window),
        ChaosScenario("spikes", (SpikeOutlier(0.25, magnitude_w=250.0),)),
        ChaosScenario("jitter", (ClockJitter(3),)),
        ChaosScenario("delay", (DelayedArrival(4, prob=0.5),)),
        ChaosScenario("flaky-reads", fail_first=2),
        ChaosScenario("dead-feed", (OutageWindow(0, 10 * test_seconds),)),
    )


@dataclass
class ScenarioOutcome:
    """Accuracy and health bookkeeping for one scenario run."""

    scenario: str
    mode: str
    health: str
    n_readings_used: int
    gated_readings: int
    retries: int
    model_only_fraction: float
    mape_total: float
    mape_window: float
    mape_outside: float

    def row(self) -> list:
        return [
            self.scenario, self.mode, self.health, self.n_readings_used,
            self.gated_readings, self.retries,
            f"{self.model_only_fraction:.2f}", f"{self.mape_total:.2f}",
            f"{self.mape_window:.2f}", f"{self.mape_outside:.2f}",
        ]


COLUMNS = [
    "scenario", "mode", "health", "readings", "gated", "retries",
    "model-only", "MAPE%", "MAPE%(fault win)", "MAPE%(healthy win)",
]


@dataclass
class ChaosReport:
    """Everything one sweep produced, renderable as text or JSON."""

    platform: str
    settings: ChaosSettings
    outcomes: list[ScenarioOutcome] = field(default_factory=list)
    #: :meth:`~repro.obs.OverheadProfiler.report` of the swept service.
    self_overhead: dict = field(default_factory=dict)
    #: :meth:`~repro.obs.MetricsRegistry.snapshot` of everything the sweep
    #: emitted (service counters, pipeline spans, perf dispatch mix).
    metrics: dict = field(default_factory=dict)

    def outcome(self, scenario: str) -> ScenarioOutcome:
        for o in self.outcomes:
            if o.scenario == scenario:
                return o
        raise KeyError(f"no scenario {scenario!r} in this report")

    def degradation_summary(self) -> str:
        """One line of sweep-wide resilience totals (no JSON spelunking)."""
        retries = sum(o.retries for o in self.outcomes)
        gated = sum(o.gated_readings for o in self.outcomes)
        outages = sum(1 for o in self.outcomes if o.health == "outage")
        degraded = sum(1 for o in self.outcomes if o.health == "degraded")
        return (
            f"degradation: {retries} retr{'y' if retries == 1 else 'ies'}, "
            f"{gated} gated reading(s), {degraded} degraded and "
            f"{outages} outage run(s) across {len(self.outcomes)} scenario(s)"
        )

    def render(self) -> str:
        rows = [o.row() for o in self.outcomes]
        widths = [
            max(len(str(c)), *(len(str(r[i])) for r in rows)) if rows else len(str(c))
            for i, c in enumerate(COLUMNS)
        ]
        def fmt(cells):
            return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
        lines = [
            f"chaos sweep on {self.platform} "
            f"(test={self.settings.test_benchmark}, "
            f"{self.settings.test_seconds}s, seed={self.settings.seed})",
            fmt(COLUMNS),
            fmt(["-" * w for w in widths]),
        ]
        lines += [fmt(r) for r in rows]
        lines.append(self.degradation_summary())
        if self.self_overhead:
            lines.append(render_overhead(self.self_overhead))
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "platform": self.platform,
            "settings": asdict(self.settings),
            "scenarios": [asdict(o) for o in self.outcomes],
            "self_overhead": self.self_overhead,
            "metrics": self.metrics,
        }
        return json.dumps(payload, indent=2, default=str)


def _train_service(settings: ChaosSettings) -> tuple[PowerMonitorService, NodeSimulator]:
    spec = get_platform(settings.platform)
    catalog = default_catalog(seed=settings.seed)
    sim = NodeSimulator(spec, seed=settings.seed + 1)
    train = [
        sim.run(catalog.get(name), duration_s=settings.train_seconds)
        for name in settings.train_benchmarks
    ]
    cfg = HighRPMConfig(
        lstm_iters=settings.lstm_iters,
        srr_iters=settings.srr_iters,
        seed=settings.seed,
    )
    model = HighRPM(
        cfg, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w
    )
    model.fit_initial(train)
    return PowerMonitorService(model, spec, policy=ResiliencePolicy()), sim


def reference_run(settings: "ChaosSettings | None" = None):
    """The sweep's shared starting point: a trained service + test bundle.

    Also the anchor of the golden regression fixture
    (``scripts/make_golden_monitor.py`` / ``tests/test_golden_monitor.py``)
    — everything downstream of it is deterministic in ``settings.seed``.
    """
    settings = settings or ChaosSettings()
    service, sim = _train_service(settings)
    catalog = default_catalog(seed=settings.seed)
    bundle = sim.run(
        catalog.get(settings.test_benchmark), duration_s=settings.test_seconds
    )
    return service, bundle


def run_chaos(
    settings: "ChaosSettings | None" = None,
    scenarios: "tuple[ChaosScenario, ...] | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> ChaosReport:
    """Train one service, run every scenario through it, report MAPE.

    The sweep collects its instrumentation (service counters, pipeline
    spans, self-overhead) into ``registry`` — its own private one by
    default, so back-to-back sweeps do not pollute each other — and embeds
    the snapshot in the report.
    """
    settings = settings or ChaosSettings()
    scenarios = scenarios if scenarios is not None else default_scenarios(
        settings.test_seconds
    )
    registry = registry if registry is not None else MetricsRegistry()
    with use_registry(registry):
        service, bundle = reference_run(settings)
        report = _sweep(service, bundle, settings, scenarios)
    report.self_overhead = service.profiler.report()
    report.metrics = registry.snapshot()
    return report


def _sweep(
    service: PowerMonitorService,
    bundle,
    settings: ChaosSettings,
    scenarios: "tuple[ChaosScenario, ...]",
) -> ChaosReport:
    spec = get_platform(settings.platform)
    truth = bundle.node.values
    report = ChaosReport(platform=settings.platform, settings=settings)
    for k, scenario in enumerate(scenarios):
        node = f"chaos-{scenario.name}"
        sensor = FaultySensor(
            IPMISensor(spec, seed=settings.seed + 100 + k),
            faults=scenario.faults,
            seed=settings.seed + 200 + k,
            fail_prob=scenario.fail_prob,
            fail_first=scenario.fail_first,
        )
        service.register_node(node, sensor=sensor)
        result = service.observe_run(node, bundle, online=settings.online)
        health = service.health(node)
        window = np.zeros(len(bundle), dtype=bool)
        if scenario.window is not None:
            window[scenario.window[0]:scenario.window[1]] = True
        outside = ~window
        report.outcomes.append(
            ScenarioOutcome(
                scenario=scenario.name,
                mode=result.mode,
                health=health.status,
                n_readings_used=(
                    0 if result.mode == "model_only"
                    else int((result.provenance == PROV_MEASURED).sum())
                ),
                gated_readings=health.gated_readings,
                retries=health.retries,
                model_only_fraction=float(result.model_only_mask.mean()),
                mape_total=mape(truth, result.p_node),
                mape_window=(
                    mape(truth[window], result.p_node[window])
                    if window.any() else float("nan")
                ),
                mape_outside=mape(truth[outside], result.p_node[outside]),
            )
        )
    return report


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos",
        description="Sweep IM-feed fault scenarios through the monitor service.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized settings (smaller training budget)")
    parser.add_argument("--platform", default=None, help="arm (default) or x86")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", help="run only the named scenario(s)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write the report as JSON")
    args = parser.parse_args(argv)

    settings = ChaosSettings.smoke() if args.smoke else ChaosSettings()
    if args.platform:
        settings = replace(settings, platform=args.platform)
    if args.seed is not None:
        settings = replace(settings, seed=args.seed)
    scenarios = default_scenarios(settings.test_seconds)
    if args.scenario:
        chosen = {s.lower() for s in args.scenario}
        unknown = chosen - {s.name for s in scenarios}
        if unknown:
            parser.error(f"unknown scenario(s): {sorted(unknown)}")
        scenarios = tuple(s for s in scenarios if s.name in chosen)

    report = run_chaos(settings, scenarios)
    print(report.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
