"""Deterministic fault injection for the measurement substrate.

HighRPM's premise is fusing an *unreliable-but-accurate* IM feed with an
always-on PMC model, so the reproduction needs the unreliability too. The
paper's §6.4.6 failure mode (jittered/missed BMC readings) and the stalls
and glitches documented for real integrated-measurement channels are
modelled here as composable, seeded fault models applied to a sensor's
output *after* the fact — the wrapped sensor and the underlying
:class:`~repro.types.TraceBundle` are never mutated.

* :mod:`repro.faults.models` — the fault vocabulary (:class:`OutageWindow`,
  :class:`RandomDropout`, :class:`StuckAt`, :class:`SpikeOutlier`,
  :class:`ClockJitter`, :class:`DelayedArrival`, :class:`GainDrift`);
* :mod:`repro.faults.inject` — :class:`FaultInjector` composes models over
  :class:`~repro.sensors.SparseReadings`; :class:`FaultySensor`,
  :class:`FaultyPMCCollector` and :class:`FaultyRAPLEmulator` wrap the
  concrete sensors behind their existing interfaces;
* :mod:`repro.faults.chaos` — the chaos harness
  (``python -m repro.faults.chaos``): sweeps fault scenarios through a
  :class:`~repro.monitor.PowerMonitorService` and reports per-scenario
  restoration MAPE. (Imported lazily — not re-exported here — because it
  sits above the monitor service in the import graph.)

The consumer-side resilience policies that make these faults survivable
live in :mod:`repro.monitor.resilience`.
"""

from .inject import FaultInjector, FaultyPMCCollector, FaultyRAPLEmulator, FaultySensor
from .models import (
    ClockJitter,
    DelayedArrival,
    FaultModel,
    GainDrift,
    OutageWindow,
    RandomDropout,
    SpikeOutlier,
    StuckAt,
)

__all__ = [
    "FaultModel",
    "OutageWindow",
    "RandomDropout",
    "StuckAt",
    "SpikeOutlier",
    "ClockJitter",
    "DelayedArrival",
    "GainDrift",
    "FaultInjector",
    "FaultySensor",
    "FaultyPMCCollector",
    "FaultyRAPLEmulator",
]
