"""Power capping via DVFS, driven by (possibly slow) power readings.

Reproduces the Fig. 1 experiment setup: the node's power is read once per
**PI** seconds (power-reading interval) and the capping policy may act once
per **AI** seconds (action interval). When the last reading exceeds the cap
the policy steps the frequency down one level; when it is comfortably under
the cap, it steps back up. Large PI hides spikes; large AI lets excursions
run long — both raise peak power and total energy, which is exactly the
paper's motivation for high-resolution monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CappingError, ValidationError
from ..hardware.node import NodeSimulator
from ..hardware.platform import PlatformSpec
from ..types import TraceBundle
from ..workloads.base import Workload


@dataclass(frozen=True)
class CappingPolicy:
    """Cap + timing configuration.

    ``reading_interval_s`` is the paper's PI, ``action_interval_s`` its AI.
    ``headroom_w`` is how far below the cap a reading must be before the
    policy dares to raise frequency again.
    """

    cap_w: float
    reading_interval_s: int = 1
    action_interval_s: int = 1
    headroom_w: float = 5.0

    def __post_init__(self) -> None:
        if self.cap_w <= 0:
            raise ValidationError("cap_w must be positive")
        if self.reading_interval_s < 1 or self.action_interval_s < 1:
            raise ValidationError("intervals must be >= 1 s")
        if self.headroom_w < 0:
            raise ValidationError("headroom_w must be >= 0")


class PowerCapController:
    """Stateful DVFS governor implementing :class:`CappingPolicy`.

    Instances are valid :data:`repro.hardware.node.FrequencyController`
    callables: ``controller(t, node_power_history) -> freq_ghz``.
    """

    def __init__(self, spec: PlatformSpec, policy: CappingPolicy) -> None:
        if policy.cap_w <= spec.min_node_power_w:
            raise CappingError(
                f"cap {policy.cap_w} W is below the platform floor "
                f"{spec.min_node_power_w:.1f} W — unreachable"
            )
        self.spec = spec
        self.policy = policy
        self._levels = sorted(spec.freq_levels_ghz)
        self._level_idx = len(self._levels) - 1  # start at max frequency
        self._last_reading: "float | None" = None
        self.actions: list[tuple[int, float]] = []  # (t, new_freq) log

    @property
    def current_freq_ghz(self) -> float:
        return self._levels[self._level_idx]

    def __call__(self, t: int, history: np.ndarray) -> float:
        pol = self.policy
        # Sensor path: a new reading becomes visible every PI seconds.
        if t > 0 and (t % pol.reading_interval_s == 0) and history.shape[0] > 0:
            self._last_reading = float(history[-1])
        # Actuation path: the governor may act every AI seconds.
        if t > 0 and (t % pol.action_interval_s == 0) and self._last_reading is not None:
            if self._last_reading > pol.cap_w and self._level_idx > 0:
                self._level_idx -= 1
                self.actions.append((t, self.current_freq_ghz))
            elif (
                self._last_reading < pol.cap_w - pol.headroom_w
                and self._level_idx < len(self._levels) - 1
            ):
                self._level_idx += 1
                self.actions.append((t, self.current_freq_ghz))
        return self.current_freq_ghz


def run_capped(
    sim: NodeSimulator,
    workload: Workload,
    policy: CappingPolicy,
    duration_s: "int | None" = None,
    run_id: int = 0,
) -> tuple[TraceBundle, PowerCapController]:
    """Run a workload under a capping policy; returns (bundle, controller)."""
    controller = PowerCapController(sim.spec, policy)
    bundle = sim.run_controlled(workload, controller, duration_s, run_id=run_id)
    return bundle, controller
