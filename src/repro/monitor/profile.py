"""Node profiles and device classes: heterogeneous fleets, one service.

The paper's §6.4.4 argues the HighRPM methodology generalises to any
counter-bearing peripheral. This module is the monitor-side half of that
claim: a fleet is a collection of :class:`NodeProfile`\\ s, each naming a
**device class** — a (restoration model, attribution head, power clamps)
triple registered once on the :class:`~repro.monitor.PowerMonitorService`.
CPU-only nodes use the classic two-way :class:`~repro.core.srr.SRR` head;
accelerated nodes use the three-way :class:`~repro.gpu.GPUSRR` head over
a HighRPM trained on the 16-column (host + GPU) counter matrix.

Heads are *dispatchable*: the pipeline's attribute stage calls whichever
head the node's class names, and the fleet front-end batches chunks **per
head** through ``predict_batched`` — per-node outputs stay bit-identical
to the sequential path because every compiled forward is batch-size
independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.highrpm import HighRPM
from ..core.srr import SRR
from ..errors import ValidationError
from ..gpu.srr import GPUSRR

#: The implicit device class of every node registered without a profile —
#: the service's constructor model/spec pair.
DEFAULT_DEVICE_CLASS = "cpu"


@dataclass(frozen=True)
class NodeProfile:
    """Per-node registration facts: class membership, seeding, sampling.

    Parameters
    ----------
    device_class:
        Name of a class previously registered via
        :meth:`~repro.monitor.PowerMonitorService.register_device_class`
        (the constructor registers :data:`DEFAULT_DEVICE_CLASS`).
    seed:
        Seed for the node's default IM sensor when none is injected.
    interval_s:
        IM sampling interval override for the default sensor (None keeps
        the platform's nominal BMC interval).
    """

    device_class: str = DEFAULT_DEVICE_CLASS
    seed: int = 0
    interval_s: "int | None" = None


class AttributionHead:
    """Distributes restored node power over a class's components.

    Concrete heads wrap a fitted spatial-restoration model and expose a
    uniform surface: ``components`` names the output channels in order,
    ``predict`` maps one chunk, ``predict_batched`` maps many chunks in a
    single forward pass with per-chunk outputs bit-identical to
    ``predict`` (the fleet front-end's batching contract).
    """

    components: "tuple[str, ...]" = ()

    @property
    def mlp(self):
        """The underlying fitted MLP (precompiled by the service)."""
        raise NotImplementedError

    def predict(self, pmcs, p_node) -> "tuple[np.ndarray, ...]":
        raise NotImplementedError

    def predict_batched(self, parts) -> "list[tuple[np.ndarray, ...]]":
        raise NotImplementedError


class SRRHead(AttributionHead):
    """The classic two-way (CPU, DRAM) budget split."""

    components = ("cpu", "mem")

    def __init__(self, srr: SRR) -> None:
        self.srr = srr

    @property
    def mlp(self):
        return self.srr.model_

    def predict(self, pmcs, p_node):
        return self.srr.predict(pmcs, p_node)

    def predict_batched(self, parts):
        return self.srr.predict_batched(parts)


class GPUSRRHead(AttributionHead):
    """Three-way (CPU, DRAM, GPU) softmax-share split for accelerated nodes."""

    components = ("cpu", "mem", "gpu")

    def __init__(self, srr: GPUSRR) -> None:
        self.srr = srr

    @property
    def mlp(self):
        return self.srr.model_

    def predict(self, pmcs, p_node):
        return self.srr.predict(pmcs, p_node)

    def predict_batched(self, parts):
        return self.srr.predict_batched(parts)


def apply_attribution(chunk, parts: "tuple[np.ndarray, ...]") -> None:
    """Write one head output tuple onto a chunk's component channels."""
    chunk.p_cpu = parts[0]
    chunk.p_mem = parts[1]
    chunk.p_gpu = parts[2] if len(parts) > 2 else None


@dataclass(frozen=True)
class DeviceClass:
    """One registered device class: model, head, and physical power range.

    ``p_bottom`` / ``p_upper`` are the class's plausibility clamps — the
    gate stage drops IM readings outside them, and the cluster budget uses
    them as each member node's floor and ceiling.
    """

    name: str
    model: HighRPM
    head: AttributionHead
    p_bottom: float
    p_upper: float

    def __post_init__(self) -> None:
        if not self.p_upper > self.p_bottom:
            raise ValidationError(
                f"device class {self.name!r}: p_upper ({self.p_upper}) must "
                f"exceed p_bottom ({self.p_bottom})"
            )

    @property
    def clamps(self) -> "tuple[float, float]":
        return (self.p_bottom, self.p_upper)
