"""Consumer-side resilience for the monitor service.

The fault layer (:mod:`repro.faults`) makes the IM feed fail the way real
BMC channels do; this module is the other half: the policies the service
applies so monitoring *degrades* instead of erroring. Three mechanisms:

* **retry with backoff** — transient read failures
  (:class:`~repro.errors.TransientSensorError`) are retried a bounded
  number of times with exponential backoff (the backoff is recorded, and
  only actually slept when the policy carries a ``sleep`` callable — tests
  and simulations pass none);
* **plausibility gating** — IM readings outside the Algorithm-1 physical
  power clamps ``[p_bottom, p_upper]`` (± a margin) are measurement
  glitches, not power; they are dropped before restoration ever sees them;
* **graceful degradation** — when no usable reading survives (outage,
  short run, everything gated) the service falls back to model-only
  restoration and flags every sample's provenance accordingly.

:class:`NodeHealth` is the per-node record of all of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import TransientSensorError, ValidationError
from ..sensors.base import SparseReadings

#: Node health states (most recent observed run wins).
HEALTHY = "healthy"
DEGRADED = "degraded"
OUTAGE = "outage"


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the service responds to a misbehaving IM feed.

    Parameters
    ----------
    max_retries:
        Extra ``sample()`` attempts after a transient failure.
    backoff_base_s:
        First retry delay; doubles per attempt (recorded in the node
        health; slept only when ``sleep`` is provided).
    gate_readings:
        Drop readings outside the physical power clamps before restoring.
    gate_margin_fraction:
        Fractional widening of ``[p_bottom, p_upper]`` before a reading is
        declared implausible. The clamps are Algorithm-1 operating bounds,
        not hard physical rails — bursty workloads overshoot ``p_upper``
        by up to ~20 % on the synthetic platforms, and sensor noise and
        quantisation add more — so the default margin is generous; it
        still rejects the hundreds-of-watts glitches gating exists for.
    degrade_to_model_only:
        When no usable readings remain — outage, short bundle, everything
        gated — restore model-only instead of raising.
    min_readings_static / min_readings_dynamic:
        Fewest plausible readings each restoration mode needs; below the
        floor the run degrades (StaticTRR's spline needs four knots).
    sleep:
        Optional callable taking the backoff seconds; ``None`` keeps
        retries instantaneous (simulation/tests).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    gate_readings: bool = True
    gate_margin_fraction: float = 0.25
    degrade_to_model_only: bool = True
    min_readings_static: int = 4
    min_readings_dynamic: int = 1
    sleep: "Callable[[float], None] | None" = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValidationError("backoff_base_s must be >= 0")
        if self.gate_margin_fraction < 0:
            raise ValidationError("gate_margin_fraction must be >= 0")
        if self.min_readings_static < 4:
            raise ValidationError("min_readings_static must be >= 4 (spline knots)")
        if self.min_readings_dynamic < 1:
            raise ValidationError("min_readings_dynamic must be >= 1")

    def min_readings(self, online: bool) -> int:
        return self.min_readings_dynamic if online else self.min_readings_static


@dataclass
class NodeHealth:
    """Per-node feed-health bookkeeping, updated on every observed run."""

    node_id: str
    status: str = HEALTHY
    runs: int = 0
    consecutive_failures: int = 0
    transient_failures: int = 0
    retries: int = 0
    backoff_total_s: float = 0.0
    gated_readings: int = 0
    outages: int = 0
    model_only_runs: int = 0
    degraded_runs: int = 0
    last_error: "str | None" = None
    history: list = field(default_factory=list)

    def record_healthy_run(self) -> None:
        self.runs += 1
        self.consecutive_failures = 0
        self.status = HEALTHY
        self.history.append(HEALTHY)

    def record_degraded_run(self, reason: str) -> None:
        self.runs += 1
        self.degraded_runs += 1
        self.consecutive_failures = 0
        self.status = DEGRADED
        self.last_error = reason
        self.history.append(DEGRADED)

    def record_outage_run(self, reason: str) -> None:
        self.runs += 1
        self.outages += 1
        self.model_only_runs += 1
        self.consecutive_failures += 1
        self.status = OUTAGE
        self.last_error = reason
        self.history.append(OUTAGE)

    def record_transient(self, error: Exception, backoff_s: float) -> None:
        self.transient_failures += 1
        self.retries += 1
        self.backoff_total_s += float(backoff_s)
        self.last_error = str(error)


def sample_with_retry(
    sensor,
    bundle,
    policy: ResiliencePolicy,
    health: NodeHealth,
) -> SparseReadings:
    """``sensor.sample`` with bounded exponential-backoff retry.

    Transient failures are retried ``policy.max_retries`` times; the final
    failure (or any non-transient :class:`~repro.errors.SensorError`)
    propagates to the caller's degradation path.
    """
    attempt = 0
    while True:
        try:
            return sensor.sample(bundle)
        except TransientSensorError as exc:
            if attempt >= policy.max_retries:
                raise
            backoff = policy.backoff_base_s * (2.0 ** attempt)
            health.record_transient(exc, backoff)
            if policy.sleep is not None:
                policy.sleep(backoff)
            attempt += 1


def gate_readings(
    readings: SparseReadings,
    p_bottom: float,
    p_upper: float,
    margin_fraction: float,
) -> tuple["SparseReadings | None", int]:
    """Drop implausible readings; returns ``(gated_stream, n_dropped)``.

    The plausibility band is the Algorithm-1 physical clamp range widened
    by ``margin_fraction`` of its span. A stream whose every reading is
    implausible returns ``None`` — for the consumer that is an outage.
    """
    span = float(p_upper) - float(p_bottom)
    if span <= 0:
        raise ValidationError(f"invalid power clamps: [{p_bottom}, {p_upper}]")
    lo = float(p_bottom) - margin_fraction * span
    hi = float(p_upper) + margin_fraction * span
    ok = (readings.values >= lo) & (readings.values <= hi)
    dropped = int((~ok).sum())
    if dropped == 0:
        return readings, 0
    if not ok.any():
        return None, dropped
    return (
        SparseReadings(
            indices=readings.indices[ok],
            values=readings.values[ok],
            interval_s=readings.interval_s,
            n_dense=readings.n_dense,
        ),
        dropped,
    )
