"""Model-assisted power capping: HighRPM in the control loop.

Fig. 1 shows what slow readings cost a capping governor. The obvious next
step — and the reason HighRPM exists (§1: "power readings help the system
quickly respond to changes") — is to put the restored estimates *in the
loop*: the BMC still reports once every ``miss_interval`` seconds, but the
governor acts every second on DynamicTRR's live estimate instead of the
stale reading.

:class:`AssistedCapController` wraps a :class:`~repro.core.dynamic_trr`
online session: each second it feeds the PMC row (and the IM reading when
one arrives), gets the restored node-power estimate, and applies the same
threshold policy as the plain governor. The bench compares the three
regimes the paper's motivation implies:

* fast sensing (PI = 1 s) — the unaffordable ideal;
* slow sensing (PI = miss_interval) — what IPMI gives you;
* slow sensing + HighRPM — the paper's proposition.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamic_trr import DynamicTRR
from ..errors import CappingError, ValidationError
from ..hardware.node import NodeSimulator
from ..hardware.platform import PlatformSpec
from ..types import TraceBundle
from ..workloads.base import Workload
from .capping import CappingPolicy


class AssistedCapController:
    """DVFS governor driven by live restored power estimates.

    Not a plain :data:`FrequencyController` — it needs the PMC row each
    second, so it is driven by :func:`run_assisted_capped` rather than
    ``NodeSimulator.run_controlled``.
    """

    def __init__(self, spec: PlatformSpec, policy: CappingPolicy,
                 trr: DynamicTRR) -> None:
        if policy.cap_w <= spec.min_node_power_w:
            raise CappingError(
                f"cap {policy.cap_w} W is below the platform floor"
            )
        if trr.model_ is None:
            raise ValidationError("DynamicTRR must be fitted")
        self.spec = spec
        self.policy = policy
        self._session = trr.session()
        self._levels = sorted(spec.freq_levels_ghz)
        self._level_idx = len(self._levels) - 1
        self.actions: list[tuple[int, float]] = []
        self.estimates: list[float] = []

    @property
    def current_freq_ghz(self) -> float:
        return self._levels[self._level_idx]

    def step(self, t: int, pmc_row: np.ndarray,
             im_reading: "float | None") -> float:
        """Advance one second; returns the frequency for the *next* second."""
        estimate = self._session.step(pmc_row, im_reading)
        self.estimates.append(estimate)
        pol = self.policy
        if t > 0 and t % pol.action_interval_s == 0:
            if estimate > pol.cap_w and self._level_idx > 0:
                self._level_idx -= 1
                self.actions.append((t, self.current_freq_ghz))
            elif (estimate < pol.cap_w - pol.headroom_w
                  and self._level_idx < len(self._levels) - 1):
                self._level_idx += 1
                self.actions.append((t, self.current_freq_ghz))
        return self.current_freq_ghz


def run_assisted_capped(
    sim: NodeSimulator,
    workload: Workload,
    controller: AssistedCapController,
    reading_interval_s: int = 10,
    duration_s: "int | None" = None,
    run_id: int = 0,
    sensor_noise_w: float = 0.4,
    sensor_seed: int = 0,
) -> TraceBundle:
    """Closed-loop run where the governor sees restored estimates.

    The simulation is stepwise like ``run_controlled``, but each second the
    controller additionally receives the PMC row for the *previous* second
    (counters for second ``t`` are only complete once it has elapsed) and,
    every ``reading_interval_s`` seconds, a noisy IM reading of it.
    """
    rng_name = f"acap.{workload.name}.{run_id}"
    act_rng = sim._seeds.generator(rng_name + ".activity")
    cpu_act, mem_int = workload.synthesize(duration_s, act_rng)
    n = cpu_act.shape[0]
    stepper = sim.cpu_model.make_stepper(
        sim._seeds.generator(rng_name + ".cpu"),
        power_scale=workload.traits.cpu_power_scale,
    )
    rest_rng = sim._seeds.generator(rng_name + ".rest.preview")
    condition = sim._condition(n, sim._seeds.generator(rng_name + ".condition"))
    p_mem = sim.mem_model.power(
        mem_int, rest_rng, power_scale=workload.traits.mem_power_scale,
        condition=condition,
    )
    p_other = sim._other_power(n, rest_rng)
    noise_rng = np.random.default_rng(sensor_seed)

    p_cpu = np.empty(n)
    p_node = np.empty(n)
    freq = np.empty(n)
    current_freq = controller.current_freq_ghz
    from ..types import PMC_EVENTS

    pmcs = np.zeros((n, len(PMC_EVENTS)))
    pmc_rng = sim._seeds.generator(rng_name + ".pmc")
    # repro-lint: disable=per-sample-loop — closed loop by construction: the
    # governor's frequency choice at second t feeds the power/PMC synthesis
    # at t+1, so the timestep recurrence cannot be batched.
    for t in range(n):
        freq[t] = current_freq
        p_cpu[t] = stepper.step(float(cpu_act[t]), current_freq, float(condition[t]))
        p_node[t] = p_cpu[t] + p_mem[t] + p_other[t]
        pmcs[t] = sim.pmu_model.counters(
            cpu_act[t : t + 1], mem_int[t : t + 1], current_freq,
            workload.traits, pmc_rng,
        )[0]
        reading = None
        if t % reading_interval_s == 0:
            reading = float(p_node[t] + noise_rng.normal(0.0, sensor_noise_w))
        current_freq = controller.step(t, pmcs[t], reading)

    from ..types import PMCTrace, PowerTrace

    return TraceBundle(
        node=PowerTrace(p_node, 1.0, "node"),
        cpu=PowerTrace(p_cpu, 1.0, "cpu"),
        mem=PowerTrace(p_mem, 1.0, "mem"),
        other=PowerTrace(p_other, 1.0, "other"),
        pmcs=PMCTrace(pmcs, sample_rate_hz=1.0),
        workload=workload.name,
        platform=sim.spec.name,
        metadata={"freq_ghz": freq.copy(), "assisted": True},
    )
