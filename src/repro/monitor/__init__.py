"""Monitoring runtime: energy accounting, power capping, and the deployable
monitor service.

The capping controller reproduces the paper's motivation experiment
(Fig. 1): with slow power readings (large PI) and slow enforcement (large
AI), spikes are missed, peak power grows, and total energy rises.
"""

from .anomaly import Anomaly, PowerAnomalyDetector
from .assisted import AssistedCapController, run_assisted_capped
from .budget import ClusterPowerBudget, NodeDemand
from .capping import CappingPolicy, PowerCapController, run_capped
from .energy import EnergyAccount, energy_of, peak_of
from .fleet import FleetMonitor
from .pipeline import ObservationContext, build_pipeline
from .profile import (
    DEFAULT_DEVICE_CLASS,
    AttributionHead,
    DeviceClass,
    GPUSRRHead,
    NodeProfile,
    SRRHead,
)
from .report import RunSummary, render_node_report, summarise_runs
from .resilience import DEGRADED, HEALTHY, OUTAGE, NodeHealth, ResiliencePolicy
from .scheduler import (
    EnergyAwareScheduler,
    GovernorPolicy,
    Job,
    SamplingDecision,
    SamplingGovernor,
    ScheduleOutcome,
    decide_offset,
    decide_stride,
    node_phase,
    thin_readings,
)
from .service import MonitorLog, PowerMonitorService
from .sinks import MemoryLogSink

__all__ = [
    "Anomaly",
    "PowerAnomalyDetector",
    "AssistedCapController",
    "run_assisted_capped",
    "CappingPolicy",
    "PowerCapController",
    "run_capped",
    "EnergyAccount",
    "energy_of",
    "peak_of",
    "MonitorLog",
    "PowerMonitorService",
    "ObservationContext",
    "build_pipeline",
    "MemoryLogSink",
    "FleetMonitor",
    "NodeHealth",
    "ResiliencePolicy",
    "HEALTHY",
    "DEGRADED",
    "OUTAGE",
    "ClusterPowerBudget",
    "NodeDemand",
    "EnergyAwareScheduler",
    "Job",
    "ScheduleOutcome",
    "DEFAULT_DEVICE_CLASS",
    "AttributionHead",
    "DeviceClass",
    "GPUSRRHead",
    "NodeProfile",
    "SRRHead",
    "GovernorPolicy",
    "SamplingDecision",
    "SamplingGovernor",
    "decide_offset",
    "decide_stride",
    "node_phase",
    "thin_readings",
    "RunSummary",
    "render_node_report",
    "summarise_runs",
]
