"""Power anomaly detection on restored traces.

The paper motivates high-resolution monitoring with overheating prevention
and fast reaction to behaviour changes (§1). This module is the consumer
side of that argument: given the dense restored power stream, flag

* **spikes** — samples far outside the local trend (robust z-score on the
  residual from a moving median), and
* **level shifts** — sustained changes in mean power (two-window CUSUM-ish
  contrast), which usually mean a phase change or a misbehaving job.

Detection runs on restored estimates, so it reacts within a second instead
of within an IPMI interval — the whole point of TRR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..utils.validation import check_1d, check_positive


@dataclass(frozen=True)
class Anomaly:
    """One detection: sample index, kind, and magnitude in watts."""

    index: int
    kind: str  # "spike" or "level_shift"
    magnitude_w: float

    def __post_init__(self) -> None:
        if self.kind not in ("spike", "level_shift"):
            raise ValidationError(f"unknown anomaly kind {self.kind!r}")


def _moving_median(x: np.ndarray, width: int) -> np.ndarray:
    half = width // 2
    padded = np.pad(x, (half, half), mode="edge")
    # One strided view + a single batched median: same windows (and
    # bit-identical results) as the former per-sample loop, without the
    # O(n) interpreter round-trips.
    windows = np.lib.stride_tricks.sliding_window_view(padded, width)
    return np.median(windows[: x.shape[0]], axis=1)


class PowerAnomalyDetector:
    """Spike + level-shift detector over a dense power trace.

    Parameters
    ----------
    spike_z:
        Robust z-score threshold for point anomalies (MAD-scaled).
    shift_w:
        Minimum mean difference (watts) between adjacent windows to call a
        level shift.
    window_s:
        Width of the trend / contrast windows.
    """

    def __init__(self, spike_z: float = 4.0, shift_w: float = 8.0,
                 window_s: int = 15) -> None:
        check_positive(spike_z, "spike_z")
        check_positive(shift_w, "shift_w")
        check_positive(window_s, "window_s")
        self.spike_z = float(spike_z)
        self.shift_w = float(shift_w)
        self.window_s = int(window_s)

    def detect(self, power: np.ndarray) -> list[Anomaly]:
        """All anomalies in the trace, ordered by index."""
        x = check_1d(power, "power")
        n = x.shape[0]
        if n < 3 * self.window_s:
            return []
        out: list[Anomaly] = []

        # Spikes: residual from the moving median, MAD-normalised.
        trend = _moving_median(x, self.window_s)
        resid = x - trend
        mad = float(np.median(np.abs(resid - np.median(resid))))
        scale = max(1.4826 * mad, 1e-6)
        z = resid / scale
        spike_idx = np.flatnonzero(np.abs(z) >= self.spike_z)
        # Collapse runs of consecutive spike samples into one event at the
        # extremum (a 3 s burst is one anomaly, not three).
        if spike_idx.size:
            runs = np.split(spike_idx, np.flatnonzero(np.diff(spike_idx) > 1) + 1)
            for run in runs:
                peak = run[np.argmax(np.abs(resid[run]))]
                out.append(Anomaly(int(peak), "spike", float(resid[peak])))

        # Level shifts: contrast of adjacent window means.
        w = self.window_s
        means = np.convolve(x, np.ones(w) / w, mode="valid")
        # contrast[i] = mean(x[i:i+w]) - mean(x[i-w:i])
        contrast = means[w:] - means[:-w]
        shift_pos = np.flatnonzero(np.abs(contrast) >= self.shift_w)
        if shift_pos.size:
            runs = np.split(shift_pos, np.flatnonzero(np.diff(shift_pos) > w) + 1)
            for run in runs:
                peak = run[np.argmax(np.abs(contrast[run]))]
                out.append(
                    Anomaly(int(peak + w), "level_shift", float(contrast[peak]))
                )
        out.sort(key=lambda a: a.index)
        return out

    def detect_overload(self, power: np.ndarray, limit_w: float) -> list[int]:
        """Indices where power exceeds a hard limit (thermal protection)."""
        x = check_1d(power, "power")
        check_positive(limit_w, "limit_w")
        return np.flatnonzero(x > limit_w).tolist()
