"""Scheduling: energy-aware job placement and overhead-adaptive sampling.

Two schedulers live here. :class:`EnergyAwareScheduler` is the end
application the paper's introduction gestures at: a facility cap must be
enforced while jobs make progress, and the enforcement quality depends on
how current each node's power picture is. The scheduler:

* assigns queued jobs to idle nodes (first fit);
* every second, collects each node's power *demand* — either the true
  value (oracle), a stale IM reading (hold-last), or a HighRPM-restored
  estimate — and asks :class:`~repro.monitor.budget.ClusterPowerBudget`
  for allocations;
* throttles nodes whose allocation is below demand; a throttled job makes
  proportionally less progress that second (DVFS-style slowdown), so cap
  pressure shows up as makespan.

The accompanying bench compares demand sources: better power information
⇒ less unnecessary throttling ⇒ shorter makespan at equal cap compliance.

:class:`SamplingGovernor` schedules the *monitor itself*: per node, per
run, it trades IM sampling density against monitoring overhead. Where a
node's restoration confidence is high the governor thins the IM feed (the
spline holds between sparser anchors); where confidence drops — outages,
gated readings, model-only stretches — it snaps back to dense sampling.
Decisions are pure functions of ``(seed, node id, confidence, budget)``,
so a sharded deployment reproduces the single-process schedule bitwise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..sensors.base import SparseReadings
from ..types import TraceBundle
from ..utils.validation import check_positive
from .budget import ClusterPowerBudget, NodeDemand


@dataclass
class Job:
    """One queued job: a pre-simulated bundle to 'execute'.

    ``demand_estimates`` optionally supplies what the *monitoring stack
    believes* the job draws at each second of progress (e.g. HighRPM
    restored power); when absent the scheduler senses true power. True
    power is always what is billed and checked against the cap.
    """

    job_id: str
    bundle: TraceBundle
    demand_estimates: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.demand_estimates is not None:
            est = np.asarray(self.demand_estimates, dtype=np.float64)
            if est.shape != (len(self.bundle),):
                raise ValidationError(
                    "demand_estimates must have one value per bundle sample"
                )
            self.demand_estimates = est

    @property
    def work_s(self) -> int:
        return len(self.bundle)


@dataclass
class _Running:
    job: Job
    progress_s: float = 0.0  # fractional seconds of work completed

    @property
    def done(self) -> bool:
        return self.progress_s >= self.job.work_s - 1e-9

    def _idx(self) -> int:
        return min(int(self.progress_s), self.job.work_s - 1)

    def power_now(self) -> float:
        return float(self.job.bundle.node.values[self._idx()])

    def sensed_demand(self) -> float:
        if self.job.demand_estimates is not None:
            return float(self.job.demand_estimates[self._idx()])
        return self.power_now()


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of one scheduling run."""

    makespan_s: int
    energy_kj: float
    cap_violations_s: int
    mean_throttle: float
    completions: tuple[str, ...]


class EnergyAwareScheduler:
    """Discrete-time scheduler with budgeted throttling.

    Parameters
    ----------
    node_floors / node_ceilings:
        Per-node idle draw and per-node cap, keyed by node id.
    cluster_cap_w:
        The facility budget enforced every second.
    demand_staleness_s:
        How old the demand signal is: 1 models HighRPM-style per-second
        estimates; 10 models raw IPMI (the reading only refreshes every
        10 s). ``demand_error_w`` adds estimation noise on top.
    """

    def __init__(
        self,
        node_floors: dict[str, float],
        node_ceilings: dict[str, float],
        cluster_cap_w: float,
        demand_staleness_s: int = 1,
        demand_error_w: float = 0.0,
        seed: int = 0,
    ) -> None:
        if set(node_floors) != set(node_ceilings):
            raise ValidationError("floors and ceilings must cover the same nodes")
        check_positive(cluster_cap_w, "cluster_cap_w")
        check_positive(demand_staleness_s, "demand_staleness_s")
        self.node_floors = dict(node_floors)
        self.node_ceilings = dict(node_ceilings)
        self.budget = ClusterPowerBudget(cluster_cap_w)
        self.cluster_cap_w = float(cluster_cap_w)
        self.demand_staleness_s = int(demand_staleness_s)
        self.demand_error_w = float(demand_error_w)
        self._rng = np.random.default_rng(seed)

    def run(self, jobs: "list[Job]", max_seconds: int = 10000) -> ScheduleOutcome:
        """Execute the queue to completion (or the time limit)."""
        if not jobs:
            raise ValidationError("no jobs to schedule")
        queue = list(jobs)
        running: dict[str, _Running] = {}
        cached_demand: dict[str, float] = {
            n: self.node_floors[n] for n in self.node_floors
        }
        energy_j = 0.0
        violations = 0
        throttles: list[float] = []
        completions: list[str] = []

        for t in range(max_seconds):
            # Dispatch: fill idle nodes first-fit.
            for node_id in self.node_floors:
                if node_id not in running and queue:
                    running[node_id] = _Running(queue.pop(0))
            if not running and not queue:
                return ScheduleOutcome(
                    makespan_s=t,
                    energy_kj=energy_j / 1e3,
                    cap_violations_s=violations,
                    mean_throttle=float(np.mean(throttles)) if throttles else 1.0,
                    completions=tuple(completions),
                )

            # Demand signal: refresh per staleness, with estimation error.
            if t % self.demand_staleness_s == 0:
                for node_id in self.node_floors:
                    sensed = (
                        running[node_id].sensed_demand()
                        if node_id in running
                        else self.node_floors[node_id]
                    )
                    err = (
                        self._rng.normal(0.0, self.demand_error_w)
                        if self.demand_error_w > 0
                        else 0.0
                    )
                    cached_demand[node_id] = max(sensed + err, 0.0)

            demands = [
                NodeDemand(n, cached_demand[n], self.node_floors[n],
                           self.node_ceilings[n])
                for n in self.node_floors
            ]
            allocations = self.budget.allocate(demands)

            # Advance running jobs under their allocations. A node throttled
            # to ``alloc`` watts runs at progress factor f such that its
            # power ``floor + f·(p − floor)`` equals the allocation — the
            # idle floor is not throttleable.
            busy_now = set(running)
            total_power = 0.0
            for node_id in list(running):
                state = running[node_id]
                p = state.power_now()
                floor = self.node_floors[node_id]
                alloc = allocations[node_id]
                dyn = max(p - floor, 1e-9)
                f = float(np.clip((alloc - floor) / dyn, 0.0, 1.0))
                throttles.append(f)
                total_power += floor + f * (p - floor)
                state.progress_s += f
                if state.done:
                    completions.append(state.job.job_id)
                    del running[node_id]
            # Nodes idle this whole second draw their floor.
            total_power += sum(
                self.node_floors[n] for n in self.node_floors if n not in busy_now
            )
            energy_j += total_power
            if total_power > self.cluster_cap_w:
                violations += 1

        raise ValidationError(
            f"schedule did not finish within {max_seconds} s "
            f"({len(queue)} queued, {len(running)} running)"
        )


# --------------------------------------------------------------------------
# Overhead-adaptive sampling: the governor that schedules the monitor itself.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class GovernorPolicy:
    """Tuning knobs for :class:`SamplingGovernor`.

    Parameters
    ----------
    aggressiveness:
        How hard to chase overhead savings, in ``[0, 1]``. 0 disables the
        governor (every node stays dense); 1 thins confident nodes all the
        way to ``max_stride``.
    max_stride:
        Densest-to-sparsest ratio: a stride of k keeps every k-th IM
        reading and scales the nominal interval by k.
    confidence_floor:
        Restoration confidence below which a node is always sampled dense
        (model-only stretches score 0.4, well under the default).
    target_budget_fraction:
        The overhead budget the governor steers around — the paper's
        "small fraction of one 1 Sa/s sampling period". Spending above it
        raises thinning pressure; below it relaxes pressure.
    pinned_budget_fraction:
        When set, used *instead of* the live profiler reading. Pin this in
        sharded deployments: the wall-clock profiler differs across
        processes, and a pinned value keeps governor decisions — hence
        every downstream restored sample — bitwise reproducible.
    seed:
        Dealigns the per-node rounding phase so fleet-wide stride jumps do
        not synchronise; part of the decision function's determinism key.
    """

    aggressiveness: float = 0.5
    max_stride: int = 4
    confidence_floor: float = 0.6
    target_budget_fraction: float = 0.05
    pinned_budget_fraction: "float | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.aggressiveness <= 1.0:
            raise ValidationError(
                f"aggressiveness must be in [0, 1], got {self.aggressiveness}"
            )
        if self.max_stride < 1:
            raise ValidationError(
                f"max_stride must be >= 1, got {self.max_stride}"
            )
        if not 0.0 <= self.confidence_floor < 1.0:
            raise ValidationError(
                f"confidence_floor must be in [0, 1), got {self.confidence_floor}"
            )
        check_positive(self.target_budget_fraction, "target_budget_fraction")
        if self.pinned_budget_fraction is not None \
                and self.pinned_budget_fraction < 0:
            raise ValidationError("pinned_budget_fraction must be >= 0")


@dataclass(frozen=True)
class SamplingDecision:
    """One governor decision for one node (applies to its *next* run)."""

    node_id: str
    stride: int
    confidence: float
    budget_fraction: float
    #: "denser" / "sparser" / "hold" relative to the node's previous stride.
    direction: str
    #: Which residue class of readings survives (``indices[offset::stride]``).
    offset: int = 0


def node_phase(seed: int, node_id: str) -> float:
    """Deterministic per-node rounding phase in ``[0, 0.5)``.

    Hash-derived (not RNG-derived) so it is a pure function of the policy
    seed and the node id — independent of call order and shard layout.
    """
    digest = hashlib.sha256(f"{seed}:{node_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**65


def decide_stride(
    policy: GovernorPolicy, node_id: str, confidence: float,
    budget_fraction: float,
) -> int:
    """The governor's decision function — pure and deterministic.

    ``stride = 1 + ⌊drive · (max_stride − 1) + phase⌋`` where ``drive``
    is aggressiveness × confidence headroom × budget pressure. Confidence
    at or below the floor always yields stride 1 (dense), as does
    ``aggressiveness == 0``.
    """
    p = policy
    if p.aggressiveness <= 0.0 or p.max_stride <= 1:
        return 1
    headroom = (confidence - p.confidence_floor) / (1.0 - p.confidence_floor)
    headroom = float(np.clip(headroom, 0.0, 1.0))
    if headroom <= 0.0:
        return 1
    # Budget pressure in [0.5, 1.5]: spending at the target is neutral,
    # double the target maximises thinning, a free budget halves it.
    pressure = 0.5 + float(
        np.clip(budget_fraction / p.target_budget_fraction, 0.0, 2.0)
    ) / 2.0
    drive = float(np.clip(p.aggressiveness * headroom * pressure, 0.0, 1.0))
    stride = 1 + int(drive * (p.max_stride - 1) + node_phase(p.seed, node_id))
    return min(stride, p.max_stride)


def decide_offset(policy: GovernorPolicy, node_id: str, stride: int) -> int:
    """Which residue class of anchors a thinned node keeps — also pure.

    Spreading offsets across the fleet staggers the surviving IM instants
    (no thundering-herd BMC polling) and, on average, keeps the fleet-wide
    reading count at ``n/stride`` instead of every node paying the
    ``ceil`` — both a deterministic function of (seed, node id, stride).
    """
    if stride <= 1:
        return 0
    return int(node_phase(policy.seed, node_id) * 2.0 * stride) % stride


def thin_readings(
    readings: SparseReadings, stride: int, floor: int = 1, offset: int = 0
) -> "tuple[SparseReadings, int]":
    """Keep every ``stride``-th IM reading; returns ``(thinned, dropped)``.

    The effective stride is clamped so at least ``max(floor, 1)`` readings
    survive — thinning may never push a run below the gate's minimum-
    readings floor. ``offset`` selects which residue class survives
    (``indices[offset::stride]``; see :func:`decide_offset`). The nominal
    interval scales with the stride so the provenance reach of each
    surviving anchor grows proportionally.
    """
    n = len(readings)
    floor = max(int(floor), 1)
    if stride <= 1 or n <= floor:
        return readings, 0
    eff = max(1, min(int(stride), n // floor))
    if eff <= 1:
        return readings, 0
    # The first reading is always kept: the spline's start boundary anchor.
    # Dropping it trades a cheap interior interpolation for an expensive
    # extrapolation over the trace's setup phase. The offset then phases
    # the rest of the comb. kept = 1 + floor((n - 1 - off) / eff) >= floor
    # for any off < eff (eff <= n // floor), so the offset can never thin
    # past the floor the clamp guaranteed.
    off = int(offset) % eff
    keep = np.concatenate(([0], np.arange(eff + off, n, eff)))
    indices = readings.indices[keep]
    thinned = SparseReadings(
        indices=indices,
        values=readings.values[keep],
        interval_s=readings.interval_s * eff,
        n_dense=readings.n_dense,
    )
    return thinned, n - int(indices.shape[0])


class SamplingGovernor:
    """Per-node sampling-interval controller (overhead-adaptive monitoring).

    The service consults :meth:`stride_for` when ingesting a node's run
    (the ingest stage thins the IM feed accordingly) and calls
    :meth:`update` when the run finishes, feeding back the run's restored
    confidence and the current overhead budget fraction. State is strictly
    per node, so fleet sharding cannot reorder or couple decisions.
    """

    def __init__(self, policy: "GovernorPolicy | None" = None) -> None:
        self.policy = policy or GovernorPolicy()
        self._strides: "dict[str, int]" = {}
        self._decisions: "dict[str, SamplingDecision]" = {}

    def stride_for(self, node_id: str) -> int:
        """The stride the node's next run should be sampled at (1 = dense)."""
        return self._strides.get(node_id, 1)

    def offset_for(self, node_id: str) -> int:
        """The surviving residue class for the node's next run (0 = aligned)."""
        decision = self._decisions.get(node_id)
        return 0 if decision is None else decision.offset

    def last_decision(self, node_id: str) -> "SamplingDecision | None":
        return self._decisions.get(node_id)

    def schedule(self) -> "dict[str, int]":
        """Snapshot of every node's current stride."""
        return dict(self._strides)

    def update(
        self, node_id: str, confidence: float, budget_fraction: float
    ) -> SamplingDecision:
        """Fold one finished run's feedback into the node's schedule."""
        previous = self.stride_for(node_id)
        stride = decide_stride(self.policy, node_id, confidence, budget_fraction)
        if stride > previous:
            direction = "sparser"
        elif stride < previous:
            direction = "denser"
        else:
            direction = "hold"
        decision = SamplingDecision(
            node_id=node_id,
            stride=stride,
            confidence=float(confidence),
            budget_fraction=float(budget_fraction),
            direction=direction,
            offset=decide_offset(self.policy, node_id, stride),
        )
        self._strides[node_id] = stride
        self._decisions[node_id] = decision
        return decision
