"""Energy-aware job scheduling under a cluster power cap.

The end application the paper's introduction gestures at: a facility cap
must be enforced while jobs make progress, and the enforcement quality
depends on how current each node's power picture is. The scheduler here:

* assigns queued jobs to idle nodes (first fit);
* every second, collects each node's power *demand* — either the true
  value (oracle), a stale IM reading (hold-last), or a HighRPM-restored
  estimate — and asks :class:`~repro.monitor.budget.ClusterPowerBudget`
  for allocations;
* throttles nodes whose allocation is below demand; a throttled job makes
  proportionally less progress that second (DVFS-style slowdown), so cap
  pressure shows up as makespan.

The accompanying bench compares demand sources: better power information
⇒ less unnecessary throttling ⇒ shorter makespan at equal cap compliance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..types import TraceBundle
from ..utils.validation import check_positive
from .budget import ClusterPowerBudget, NodeDemand


@dataclass
class Job:
    """One queued job: a pre-simulated bundle to 'execute'.

    ``demand_estimates`` optionally supplies what the *monitoring stack
    believes* the job draws at each second of progress (e.g. HighRPM
    restored power); when absent the scheduler senses true power. True
    power is always what is billed and checked against the cap.
    """

    job_id: str
    bundle: TraceBundle
    demand_estimates: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.demand_estimates is not None:
            est = np.asarray(self.demand_estimates, dtype=np.float64)
            if est.shape != (len(self.bundle),):
                raise ValidationError(
                    "demand_estimates must have one value per bundle sample"
                )
            self.demand_estimates = est

    @property
    def work_s(self) -> int:
        return len(self.bundle)


@dataclass
class _Running:
    job: Job
    progress_s: float = 0.0  # fractional seconds of work completed

    @property
    def done(self) -> bool:
        return self.progress_s >= self.job.work_s - 1e-9

    def _idx(self) -> int:
        return min(int(self.progress_s), self.job.work_s - 1)

    def power_now(self) -> float:
        return float(self.job.bundle.node.values[self._idx()])

    def sensed_demand(self) -> float:
        if self.job.demand_estimates is not None:
            return float(self.job.demand_estimates[self._idx()])
        return self.power_now()


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of one scheduling run."""

    makespan_s: int
    energy_kj: float
    cap_violations_s: int
    mean_throttle: float
    completions: tuple[str, ...]


class EnergyAwareScheduler:
    """Discrete-time scheduler with budgeted throttling.

    Parameters
    ----------
    node_floors / node_ceilings:
        Per-node idle draw and per-node cap, keyed by node id.
    cluster_cap_w:
        The facility budget enforced every second.
    demand_staleness_s:
        How old the demand signal is: 1 models HighRPM-style per-second
        estimates; 10 models raw IPMI (the reading only refreshes every
        10 s). ``demand_error_w`` adds estimation noise on top.
    """

    def __init__(
        self,
        node_floors: dict[str, float],
        node_ceilings: dict[str, float],
        cluster_cap_w: float,
        demand_staleness_s: int = 1,
        demand_error_w: float = 0.0,
        seed: int = 0,
    ) -> None:
        if set(node_floors) != set(node_ceilings):
            raise ValidationError("floors and ceilings must cover the same nodes")
        check_positive(cluster_cap_w, "cluster_cap_w")
        check_positive(demand_staleness_s, "demand_staleness_s")
        self.node_floors = dict(node_floors)
        self.node_ceilings = dict(node_ceilings)
        self.budget = ClusterPowerBudget(cluster_cap_w)
        self.cluster_cap_w = float(cluster_cap_w)
        self.demand_staleness_s = int(demand_staleness_s)
        self.demand_error_w = float(demand_error_w)
        self._rng = np.random.default_rng(seed)

    def run(self, jobs: "list[Job]", max_seconds: int = 10000) -> ScheduleOutcome:
        """Execute the queue to completion (or the time limit)."""
        if not jobs:
            raise ValidationError("no jobs to schedule")
        queue = list(jobs)
        running: dict[str, _Running] = {}
        cached_demand: dict[str, float] = {
            n: self.node_floors[n] for n in self.node_floors
        }
        energy_j = 0.0
        violations = 0
        throttles: list[float] = []
        completions: list[str] = []

        for t in range(max_seconds):
            # Dispatch: fill idle nodes first-fit.
            for node_id in self.node_floors:
                if node_id not in running and queue:
                    running[node_id] = _Running(queue.pop(0))
            if not running and not queue:
                return ScheduleOutcome(
                    makespan_s=t,
                    energy_kj=energy_j / 1e3,
                    cap_violations_s=violations,
                    mean_throttle=float(np.mean(throttles)) if throttles else 1.0,
                    completions=tuple(completions),
                )

            # Demand signal: refresh per staleness, with estimation error.
            if t % self.demand_staleness_s == 0:
                for node_id in self.node_floors:
                    sensed = (
                        running[node_id].sensed_demand()
                        if node_id in running
                        else self.node_floors[node_id]
                    )
                    err = (
                        self._rng.normal(0.0, self.demand_error_w)
                        if self.demand_error_w > 0
                        else 0.0
                    )
                    cached_demand[node_id] = max(sensed + err, 0.0)

            demands = [
                NodeDemand(n, cached_demand[n], self.node_floors[n],
                           self.node_ceilings[n])
                for n in self.node_floors
            ]
            allocations = self.budget.allocate(demands)

            # Advance running jobs under their allocations. A node throttled
            # to ``alloc`` watts runs at progress factor f such that its
            # power ``floor + f·(p − floor)`` equals the allocation — the
            # idle floor is not throttleable.
            busy_now = set(running)
            total_power = 0.0
            for node_id in list(running):
                state = running[node_id]
                p = state.power_now()
                floor = self.node_floors[node_id]
                alloc = allocations[node_id]
                dyn = max(p - floor, 1e-9)
                f = float(np.clip((alloc - floor) / dyn, 0.0, 1.0))
                throttles.append(f)
                total_power += floor + f * (p - floor)
                state.progress_s += f
                if state.done:
                    completions.append(state.job.job_id)
                    del running[node_id]
            # Nodes idle this whole second draw their floor.
            total_power += sum(
                self.node_floors[n] for n in self.node_floors if n not in busy_now
            )
            energy_j += total_power
            if total_power > self.cluster_cap_w:
                violations += 1

        raise ValidationError(
            f"schedule did not finish within {max_seconds} s "
            f"({len(queue)} queued, {len(running)} running)"
        )
