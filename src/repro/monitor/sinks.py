"""Monitor-side sink implementations for the streaming pipeline."""

from __future__ import annotations

from ..stream import PowerChunk, Sink


class MemoryLogSink(Sink):
    """Appends finished chunks to a node's in-memory ``MonitorLog``.

    This is the default sink the service attaches for every registered
    node; extra sinks (e.g. :class:`~repro.stream.JsonlSink`) ride along.
    """

    def __init__(self, log) -> None:
        self.log = log

    def write(self, chunk: PowerChunk) -> None:
        self.log.append_chunk(chunk)

    def end_run(self, node_id: str, workload: str, mode: str) -> None:
        self.log.end_run(workload, mode)
