"""The observation pipeline: ingest → calibrate → gate → restore →
attribute → sink.

This is ``PowerMonitorService._observe`` decomposed into reusable
:class:`~repro.stream.Stage` objects. Stages are stateless; everything
mutable for one observed run lives on the :class:`ObservationContext`, so
the same stage instances serve many interleaved runs (the fleet front-end
drives one context per node through the shared stages).

Degradation policy is centralised in
:meth:`ObservationContext.fail_or_degrade`: any stage that finds the IM
feed unusable either raises (strict policies) or flags the whole run for
model-only restoration — the bookkeeping that used to be duplicated
between ``_observe`` and ``_observe_model_only``.
"""

from __future__ import annotations

import numpy as np

from ..core.highrpm import PROV_MODEL_ONLY, provenance_from_readings
from ..errors import SensorError, ValidationError
from ..sensors.base import SparseReadings
from ..stream import PowerChunk, RunContext, Stage, StreamPipeline, chunk_spans
from .profile import apply_attribution
from .resilience import gate_readings, sample_with_retry
from .scheduler import thin_readings


class ObservationContext(RunContext):
    """Per-run state for one node's observation through the pipeline."""

    def __init__(self, service, node_id: str, bundle, online: bool,
                 chunk_size: "int | None" = None) -> None:
        super().__init__(node_id, bundle.workload, len(bundle))
        self.service = service
        self.bundle = bundle
        self.online = bool(online)
        self.chunk_size = chunk_size
        self.sensor = service._nodes[node_id]
        self.health = service._health[node_id]
        self.policy = service.policy
        #: the node's device class resolves which restoration model,
        #: attribution head, and plausibility clamps serve this run.
        self.device_class = service.device_class_of(node_id)
        self.model = self.device_class.model
        self.head = self.device_class.head
        self.clamps = self.device_class.clamps
        #: compensation registered for this node (None = uncalibrated);
        #: consumed by CalibrateStage.open_run before the gate sees the feed.
        self.transform = service.calibration_for(node_id)
        #: set once CalibrateStage actually rewrote the readings.
        self.calibrated = False
        self.mode = "dynamic" if online else "static"
        self.readings: "SparseReadings | None" = None
        self.gated = 0
        self.transients_before = self.health.transient_failures
        #: set when the run degraded to model-only; consumed by the
        #: service's end-of-run health bookkeeping.
        self.degrade_reason: "str | None" = None
        #: bounded-memory restorer chosen by RestoreStage.open_run.
        self.restorer = None
        #: whole-run provenance flags, computed once at RestoreStage.open_run
        #: and sliced per chunk (None until then / for model-only runs).
        self.provenance_full: "np.ndarray | None" = None
        #: sinks receiving this run's finished chunks.
        self.sinks = service.sinks_for(node_id)

    def fail_or_degrade(self, degrade_reason: str, strict_record: str,
                        strict_exc: Exception, cause: "Exception | None" = None):
        """The single unusable-feed path.

        Strict policies record the outage and raise ``strict_exc``; the
        default policy flags the run for model-only restoration instead
        (the outage is recorded once, at end of run).
        """
        if not self.policy.degrade_to_model_only:
            self.health.record_outage_run(strict_record)
            if cause is not None and cause is not strict_exc:
                raise strict_exc from cause
            raise strict_exc
        self.degrade_reason = degrade_reason
        self.mode = "model_only"
        self.readings = None


def input_chunks(ctx: ObservationContext):
    """Source chunks for one run (bare spans; ingest attaches the data)."""
    spans = chunk_spans(ctx.n_samples, ctx.chunk_size)
    for seq, (start, stop) in enumerate(spans):
        yield PowerChunk(
            node_id=ctx.node_id, workload=ctx.workload,
            start=start, stop=stop, seq=seq,
            final=(stop == ctx.n_samples),
        )


class IngestStage(Stage):
    """Sample the node's IM sensor (with retry/backoff) and attach PMCs."""

    name = "ingest"
    span = "monitor.im_sample"

    def open_run(self, ctx: ObservationContext) -> None:
        try:
            ctx.readings = sample_with_retry(
                ctx.sensor, ctx.bundle, ctx.policy, ctx.health
            )
            self._thin(ctx)
        except SensorError as exc:
            # Outage (possibly injected): retries exhausted or every
            # reading dropped at the source.
            ctx.fail_or_degrade(
                f"sensor outage: {exc}", str(exc), exc, cause=exc
            )
        except ValidationError as exc:
            # The sensor cannot cover this bundle at all (run shorter than
            # the IM interval / readout delay).
            ctx.fail_or_degrade(
                f"run too short for the IM interval: {exc}",
                str(exc),
                ValidationError(
                    f"bundle {ctx.bundle.workload!r} ({len(ctx.bundle)} "
                    f"samples) is too short for node {ctx.node_id!r}'s IM "
                    f"sensor (interval {ctx.sensor.interval_s} s): {exc}"
                ),
                cause=exc,
            )

    @staticmethod
    def _thin(ctx: ObservationContext) -> None:
        """Apply the sampling governor's stride to the sampled feed.

        Thinning happens at the source — before calibration and gating —
        so every downstream stage sees exactly the feed a sparser sensor
        would have produced. The stride is clamped inside
        :func:`~repro.monitor.scheduler.thin_readings` so the gate's
        minimum-readings floor always survives.
        """
        stride = ctx.service.sampling_stride(ctx.node_id)
        if stride <= 1 or ctx.readings is None:
            return
        ctx.readings, dropped = thin_readings(
            ctx.readings, stride, ctx.policy.min_readings(ctx.online),
            offset=ctx.service.sampling_offset(ctx.node_id),
        )
        if dropped:
            ctx.service.registry.counter(
                "repro_sched_thinned_readings_total",
                "IM readings skipped by the sampling governor.", ("node",),
            ).labels(node=ctx.node_id).inc(dropped)

    def process(self, ctx: ObservationContext, chunk: PowerChunk) -> PowerChunk:
        chunk.pmcs = ctx.bundle.pmcs.matrix[chunk.start:chunk.stop]
        return chunk


class CalibrateStage(Stage):
    """Apply the node's registered compensation before the gate.

    Uncalibrated nodes (no transform, or the identity) pass through
    untouched — ``CompensationTransform.apply`` returns the *same*
    readings object for the identity, so the stage is bit-identity
    neutral when calibration is disabled. A non-identity transform
    rewrites the whole readings stream once per run (lag shift + affine
    correction; see ``docs/calibration.md``) and publishes the
    ``repro_calib_*`` counters.
    """

    name = "calibrate"
    span = "monitor.calibrate"

    def open_run(self, ctx: ObservationContext) -> None:
        if ctx.degrade_reason is not None or ctx.readings is None:
            return  # the feed already failed upstream
        transform = ctx.transform
        if transform is None or transform.is_identity:
            return
        try:
            compensated = transform.apply(ctx.readings)
        except SensorError as exc:
            # Lag compensation shifted every reading outside the run —
            # for the consumer that is a dead feed.
            ctx.fail_or_degrade(
                f"calibration emptied the feed: {exc}", str(exc), exc,
                cause=exc,
            )
            return
        dropped = len(ctx.readings) - len(compensated)
        ctx.readings = compensated
        ctx.calibrated = True
        registry = ctx.service.registry
        registry.counter(
            "repro_calib_runs_total",
            "Observed runs whose IM feed was compensated.", ("node",),
        ).labels(node=ctx.node_id).inc()
        registry.counter(
            "repro_calib_compensated_readings_total",
            "IM readings rewritten by the calibrate stage.", ("node",),
        ).labels(node=ctx.node_id).inc(len(compensated))
        if dropped:
            registry.counter(
                "repro_calib_dropped_readings_total",
                "IM readings shifted outside the run by lag compensation.",
                ("node",),
            ).labels(node=ctx.node_id).inc(dropped)


class GateStage(Stage):
    """Drop implausible readings; degrade when too few survive."""

    name = "gate"
    span = "monitor.gate"

    def open_run(self, ctx: ObservationContext) -> None:
        if ctx.degrade_reason is not None:
            return  # the feed already failed upstream
        gated = 0
        if ctx.policy.gate_readings:
            lo, hi = ctx.clamps
            ctx.readings, gated = gate_readings(
                ctx.readings, lo, hi, ctx.policy.gate_margin_fraction
            )
            ctx.health.gated_readings += gated
            ctx.gated = gated
        floor = ctx.policy.min_readings(ctx.online)
        if ctx.readings is None or len(ctx.readings) < floor:
            n_left = 0 if ctx.readings is None else len(ctx.readings)
            reason = (
                f"only {n_left} plausible reading(s) survived "
                f"({gated} gated); "
                f"{'dynamic' if ctx.online else 'static'} restoration needs "
                f">= {floor}"
            )
            ctx.fail_or_degrade(
                reason, reason,
                ValidationError(
                    f"node {ctx.node_id!r}, run {ctx.bundle.workload!r}: "
                    f"{reason}"
                ),
            )


class RestoreStage(Stage):
    """Restore dense node power with the mode's bounded-memory restorer.

    Dynamic and model-only runs map chunks one-to-one through an
    :class:`~repro.core.OnlineTRRSession`. Static runs feed a
    :class:`~repro.core.StaticTRRStream`, whose output spans lag the input
    by half a miss-interval (Algorithm-1 holds reach that far back) — the
    emitted chunks are re-spanned accordingly and still tile the run
    exactly.
    """

    name = "restore"
    span = "monitor.restore"

    def open_run(self, ctx: ObservationContext) -> None:
        model = ctx.model
        if ctx.mode == "static":
            pmcs = ctx.bundle.pmcs.matrix
            ctx.restorer = model.offline_stream(
                pmcs[ctx.readings.indices], ctx.readings
            )
        else:  # dynamic, or model_only's anchorless forecast
            ctx.restorer = model.online_session(retain=False)
        # Provenance depends only on the run's reading positions, which are
        # fixed once the gate has passed — flag the whole trace here and
        # slice per chunk instead of re-deriving neighbour distances for
        # every chunk of every node.
        if ctx.mode != "model_only":
            ctx.provenance_full = provenance_from_readings(
                ctx.n_samples, ctx.readings,
                outage_factor=ctx.model.config.resync_gap_factor,
            )

    def process(self, ctx: ObservationContext, chunk: PowerChunk):
        if ctx.mode == "static":
            return self._static(ctx, chunk)
        readings = ctx.readings if ctx.mode == "dynamic" else None
        chunk.p_node = ctx.restorer.run_chunk(chunk.pmcs, readings)
        chunk.mode = ctx.mode
        chunk.provenance = self._provenance(ctx, chunk.start, chunk.stop)
        return chunk

    def _static(self, ctx: ObservationContext, chunk: PowerChunk):
        start, vals = ctx.restorer.restore_chunk(
            chunk.pmcs, residual_hat=chunk.residual_hat
        )
        if chunk.final:
            _, tail = ctx.restorer.finish()
            vals = np.concatenate([vals, tail])
        if vals.shape[0] == 0:
            return None  # held back until the fusion window closes
        stop = start + vals.shape[0]
        return PowerChunk(
            node_id=chunk.node_id, workload=chunk.workload,
            start=start, stop=stop, seq=chunk.seq, final=chunk.final,
            mode="static",
            pmcs=ctx.bundle.pmcs.matrix[start:stop],
            p_node=vals,
            provenance=self._provenance(ctx, start, stop),
        )

    def _provenance(self, ctx: ObservationContext, start: int, stop: int):
        if ctx.mode == "model_only":
            return np.full(stop - start, PROV_MODEL_ONLY, dtype=np.uint8)
        return ctx.provenance_full[start:stop]


class AttributeStage(Stage):
    """Distribute restored node power via the node's attribution head.

    CPU-only classes split two ways (SRR); accelerated classes split
    three ways (GPUSRR), filling ``chunk.p_gpu`` as well. The head is
    resolved per run from the node's device class, so one pipeline serves
    a heterogeneous fleet.
    """

    name = "attribute"
    span = "monitor.attribute"

    def process(self, ctx: ObservationContext, chunk: PowerChunk) -> PowerChunk:
        if chunk.p_cpu is None:  # the fleet front-end pre-fills in batches
            apply_attribution(
                chunk, ctx.head.predict(chunk.pmcs, chunk.p_node)
            )
        return chunk


class SinkStage(Stage):
    """Persist finished chunks to every configured sink."""

    name = "sink"
    span = "monitor.log_append"

    def process(self, ctx: ObservationContext, chunk: PowerChunk) -> PowerChunk:
        for sink in ctx.sinks:
            sink.write(chunk)
        return chunk

    def close_run(self, ctx: ObservationContext) -> None:
        for sink in ctx.sinks:
            sink.end_run(ctx.node_id, ctx.workload, ctx.mode)


def build_pipeline() -> StreamPipeline:
    """The service's standard six-stage observation pipeline."""
    return StreamPipeline([
        IngestStage(), CalibrateStage(), GateStage(), RestoreStage(),
        AttributeStage(), SinkStage(),
    ])
