"""Deployable monitoring service.

The paper deploys HighRPM "as a service on the control node ... shared with
other computing nodes" (§4.1). :class:`PowerMonitorService` is that service:
one trained HighRPM instance, many registered nodes, each with its own
sensors; ``observe_run`` ingests a node's run and appends restored
high-resolution estimates to that node's log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.highrpm import HighRPM, MonitorResult
from ..errors import ValidationError
from ..hardware.platform import PlatformSpec
from ..perf import precompile
from ..sensors.ipmi import IPMISensor
from ..types import TraceBundle


@dataclass
class MonitorLog:
    """Accumulated restored estimates for one node."""

    node_id: str
    p_node: np.ndarray = field(default_factory=lambda: np.empty(0))
    p_cpu: np.ndarray = field(default_factory=lambda: np.empty(0))
    p_mem: np.ndarray = field(default_factory=lambda: np.empty(0))
    runs: list[str] = field(default_factory=list)

    def append(self, result: MonitorResult, workload: str) -> None:
        self.p_node = np.concatenate([self.p_node, result.p_node])
        self.p_cpu = np.concatenate([self.p_cpu, result.p_cpu])
        self.p_mem = np.concatenate([self.p_mem, result.p_mem])
        self.runs.append(workload)

    def __len__(self) -> int:
        return int(self.p_node.shape[0])


class PowerMonitorService:
    """One HighRPM model serving many nodes.

    Nodes are registered with their own IPMI sensor (per-node BMCs differ in
    noise and offset); runs are observed either online (DynamicTRR) or
    offline (StaticTRR).
    """

    def __init__(self, model: HighRPM, spec: PlatformSpec) -> None:
        model._require_fitted()
        self.model = model
        self.spec = spec
        # Compile the SRR forward pass up front: it serves every observe_run
        # on every node, so the one-time flatten cost should not land on the
        # first monitored trace.
        precompile(model.srr.model_)
        self._nodes: dict[str, IPMISensor] = {}
        self._logs: dict[str, MonitorLog] = {}

    def register_node(self, node_id: str, sensor: "IPMISensor | None" = None,
                      seed: int = 0) -> None:
        if node_id in self._nodes:
            raise ValidationError(f"node {node_id!r} already registered")
        self._nodes[node_id] = sensor or IPMISensor(self.spec, seed=seed)
        self._logs[node_id] = MonitorLog(node_id)

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def log(self, node_id: str) -> MonitorLog:
        try:
            return self._logs[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    def observe_run(
        self, node_id: str, bundle: TraceBundle, online: bool = True
    ) -> MonitorResult:
        """Ingest one run from a node; returns the restored estimates."""
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        sensor = self._nodes[node_id]
        readings = sensor.sample(bundle)
        monitor = self.model.monitor_online if online else self.model.monitor_offline
        result = monitor(bundle.pmcs.matrix, readings)
        self._logs[node_id].append(result, bundle.workload)
        return result

    def adapt(self, node_id: str, bundle: TraceBundle) -> None:
        """Active-learning round on one node's unlabeled run (§4.1)."""
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        readings = self._nodes[node_id].sample(bundle)
        self.model.active_learning([(bundle.pmcs.matrix, readings)])
