"""Deployable monitoring service.

The paper deploys HighRPM "as a service on the control node ... shared with
other computing nodes" (§4.1). :class:`PowerMonitorService` is that service:
one trained HighRPM instance, many registered nodes, each with its own
sensors; ``observe_run`` ingests a node's run and appends restored
high-resolution estimates to that node's log.

The IM feed is the unreliable half of the paper's fusion, so ``observe_run``
is defensive end to end (see :mod:`repro.monitor.resilience` and
``docs/robustness.md``): transient sensor failures are retried with
backoff, implausible readings are gated against the Algorithm-1 power
clamps, and a dead feed — a full outage, a run shorter than the IM
interval, or a fully-gated stream — degrades to model-only restoration
with every sample flagged in the log's provenance channel instead of
failing the run.
"""

from __future__ import annotations

import numpy as np

from ..calib import (
    CalibrationEstimate,
    CompensationTransform,
    DriftConfig,
    estimate_calibration,
    estimate_drift_calibration,
)
from ..core.highrpm import (
    PROV_MEASURED,
    PROV_MODEL_ONLY,
    PROV_RESTORED,
    HighRPM,
    MonitorResult,
)
from ..errors import ValidationError
from ..hardware.platform import PlatformSpec
from ..obs import (
    DEFAULT_SAMPLE_PERIOD_S,
    MetricsRegistry,
    OverheadProfiler,
    Tracer,
    get_registry,
    system_clock,
    use_registry,
    use_tracer,
)
from ..perf import precompile
from ..sensors.ipmi import IPMISensor
from ..stream import Sink
from ..types import TraceBundle
from .budget import ClusterPowerBudget, NodeDemand
from .pipeline import ObservationContext, build_pipeline, input_chunks
from .profile import (
    DEFAULT_DEVICE_CLASS,
    AttributionHead,
    DeviceClass,
    NodeProfile,
    SRRHead,
)
from .resilience import NodeHealth, ResiliencePolicy, sample_with_retry
from .scheduler import SamplingGovernor
from .sinks import MemoryLogSink

#: Human-readable provenance labels for the sample-mix counter.
_PROV_LABELS = {
    PROV_MEASURED: "measured",
    PROV_RESTORED: "restored",
    PROV_MODEL_ONLY: "model_only",
}

#: IM readings that survive per run: a smoke trace keeps a handful, a
#: campaign trace a few hundred.
_READINGS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0)


class MonitorLog:
    """Accumulated restored estimates for one node.

    Chunks are accumulated in per-channel lists and consolidated lazily on
    first read, so logging R runs costs O(total samples) — the old
    eager-concatenate append re-copied every logged sample per run
    (O(R²) over a node's lifetime).
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.runs: list[str] = []
        self.modes: list[str] = []
        self._parts: "dict[str, list[np.ndarray]]" = {
            "p_node": [], "p_cpu": [], "p_mem": [], "p_gpu": [],
            "provenance": [],
        }
        self._n = 0

    # ------------------------------------------------- chunked ingestion
    def append_chunk(self, chunk) -> None:
        """Append one restored chunk's channels (no run boundary).

        The streaming pipeline's memory sink calls this per finished
        chunk; :meth:`end_run` closes the run.
        """
        self._append_arrays(chunk.p_node, chunk.p_cpu, chunk.p_mem,
                            chunk.provenance, chunk.p_gpu)

    def end_run(self, workload: str, mode: str) -> None:
        """Record a run boundary after its chunks were appended."""
        self.runs.append(workload)
        self.modes.append(mode)

    def append(self, result: MonitorResult, workload: str) -> None:
        """Whole-run append (one implicit chunk plus the run boundary)."""
        self._append_arrays(result.p_node, result.p_cpu, result.p_mem,
                            result.provenance, result.p_gpu)
        self.end_run(workload, result.mode)

    def _append_arrays(self, p_node, p_cpu, p_mem, prov, p_gpu=None) -> None:
        n = int(p_node.shape[0])
        checks = [("p_cpu", p_cpu), ("p_mem", p_mem)]
        if p_gpu is not None:
            checks.append(("p_gpu", p_gpu))
        for name, arr in checks:
            got = 0 if arr is None else int(arr.shape[0])
            if got != n:
                raise ValidationError(
                    f"monitor result is inconsistent: {name} has "
                    f"{got} samples, p_node has {n}"
                )
        if prov is None:
            prov = np.full(n, PROV_RESTORED, dtype=np.uint8)
        elif prov.shape[0] != n:
            raise ValidationError(
                f"monitor result is inconsistent: provenance has "
                f"{prov.shape[0]} samples, p_node has {n}"
            )
        self._parts["p_node"].append(np.asarray(p_node, dtype=np.float64))
        self._parts["p_cpu"].append(np.asarray(p_cpu, dtype=np.float64))
        self._parts["p_mem"].append(np.asarray(p_mem, dtype=np.float64))
        # CPU-only chunks log zero accelerator power, keeping every channel
        # aligned sample-for-sample across heterogeneous fleets.
        self._parts["p_gpu"].append(
            np.zeros(n) if p_gpu is None
            else np.asarray(p_gpu, dtype=np.float64)
        )
        self._parts["provenance"].append(prov.astype(np.uint8))
        self._n += n

    # ---------------------------------------------------- lazy read side
    def _channel(self, name: str) -> np.ndarray:
        parts = self._parts[name]
        if not parts:
            return np.empty(0, dtype=np.uint8 if name == "provenance"
                            else np.float64)
        if len(parts) > 1:  # consolidate once; later appends re-extend
            self._parts[name] = parts = [np.concatenate(parts)]
        return parts[0]

    @property
    def p_node(self) -> np.ndarray:
        return self._channel("p_node")

    @property
    def p_cpu(self) -> np.ndarray:
        return self._channel("p_cpu")

    @property
    def p_mem(self) -> np.ndarray:
        return self._channel("p_mem")

    @property
    def p_gpu(self) -> np.ndarray:
        """Accelerator channel (all-zero for CPU-only device classes)."""
        return self._channel("p_gpu")

    @property
    def provenance(self) -> np.ndarray:
        return self._channel("provenance")

    def __len__(self) -> int:
        return self._n

    @property
    def model_only_mask(self) -> np.ndarray:
        """True where the logged estimate ran without a usable IM anchor."""
        return self.provenance == PROV_MODEL_ONLY

    def model_only_fraction(self) -> float:
        """Share of logged samples produced without IM backing."""
        if len(self) == 0:
            return 0.0
        return float(self.model_only_mask.mean())

    def summary(self) -> "dict[str, object]":
        """Headline counters for one node's log (runs, sample provenance)."""
        prov = self.provenance
        return {
            "node_id": self.node_id,
            "runs": len(self.runs),
            "samples": len(self),
            "measured": int((prov == PROV_MEASURED).sum()),
            "restored": int((prov == PROV_RESTORED).sum()),
            "model_only": int((prov == PROV_MODEL_ONLY).sum()),
            "model_only_fraction": self.model_only_fraction(),
        }


class PowerMonitorService:
    """One HighRPM model serving many nodes.

    Nodes are registered with their own IPMI sensor (per-node BMCs differ in
    noise and offset); runs are observed either online (DynamicTRR) or
    offline (StaticTRR). ``policy`` governs how a failing feed is handled —
    the default retries transients, gates implausible readings, and
    degrades to model-only restoration rather than raising.
    """

    def __init__(
        self,
        model: HighRPM,
        spec: PlatformSpec,
        policy: "ResiliencePolicy | None" = None,
        registry: "MetricsRegistry | None" = None,
        clock=None,
        sinks: "list[Sink] | None" = None,
        fast_math: "bool | None" = None,
    ) -> None:
        model._require_fitted()
        self.model = model
        self.spec = spec
        self.policy = policy or ResiliencePolicy()
        # Opt-in fast-math tier: an explicit flag switches the model's
        # inference tier (HighRPM.set_fast_math); None inherits whatever
        # tier the model config already selects. See docs/performance.md
        # ("The fast-math contract") for the tolerance semantics.
        if fast_math is not None:
            model.set_fast_math(fast_math)
        self.fast_math = model.config.fast_math
        # Observability: metrics land in the given registry (default: the
        # ambient one at construction time), pipeline spans are timed with
        # the given clock (default: the process monotonic clock; tests pass
        # a ManualClock), and the profiler prices each observe_run against
        # the paper's 1 Sa/s sampling budget.
        self.registry = registry if registry is not None else get_registry()  # repro-lint: disable=registry-capture — the service is the injection boundary: callers pass an explicit registry (tests do), and the ambient fallback is the documented single-process default; per-shard workers receive the service's registry explicitly
        self.clock = clock if clock is not None else system_clock()
        self.tracer = Tracer(clock=self.clock, registry=self.registry)
        self.profiler = OverheadProfiler(
            clock=self.clock,
            sample_period_s=DEFAULT_SAMPLE_PERIOD_S,
            registry=self.registry,
        )
        #: registered device classes; the constructor model/spec pair is the
        #: implicit default class, further classes (e.g. GPU nodes) attach
        #: their own restoration model and attribution head.
        self._classes: "dict[str, DeviceClass]" = {}
        self.register_device_class(DEFAULT_DEVICE_CLASS, model)
        self._nodes: dict[str, IPMISensor] = {}
        self._profiles: "dict[str, NodeProfile]" = {}
        self._logs: dict[str, MonitorLog] = {}
        self._health: dict[str, NodeHealth] = {}
        #: optional overhead-adaptive sampling controller (see set_governor).
        self._governor: "SamplingGovernor | None" = None
        #: per-node compensation transforms (absent = uncalibrated feed);
        #: applied by the pipeline's calibrate stage before the gate.
        self._calibration: "dict[str, CompensationTransform]" = {}
        #: extra sinks shared by every node (each node's in-memory log is
        #: always attached in front of these).
        self._sinks: "list[Sink]" = list(sinks) if sinks else []
        #: the staged observation pipeline; stages are stateless, per-run
        #: state travels on an ObservationContext.
        self._pipeline = build_pipeline()

    # ------------------------------------------------------ device classes
    def register_device_class(
        self,
        name: str,
        model: HighRPM,
        head: "AttributionHead | None" = None,
        p_bottom: "float | None" = None,
        p_upper: "float | None" = None,
    ) -> DeviceClass:
        """Register a device class: restoration model + attribution head.

        ``head`` defaults to the model's own two-way SRR; GPU classes pass
        a :class:`~repro.monitor.profile.GPUSRRHead`. Clamps default to
        the model's fitted power range (the constructor's default class
        additionally falls back to the platform spec). The head's forward
        is precompiled at the service's inference tier, same as the
        default class.
        """
        if name in self._classes:
            raise ValidationError(f"device class {name!r} already registered")
        model._require_fitted()
        if model.config.fast_math != self.fast_math:
            model.set_fast_math(self.fast_math)
        if head is None:
            head = SRRHead(model.srr)
        lo = model.p_bottom if p_bottom is None else p_bottom
        hi = model.p_upper if p_upper is None else p_upper
        if name == DEFAULT_DEVICE_CLASS:
            lo = self.spec.min_node_power_w if lo is None else lo
            hi = self.spec.max_node_power_w if hi is None else hi
        if lo is None or hi is None:
            raise ValidationError(
                f"device class {name!r} needs power clamps: fit the model "
                f"with p_bottom/p_upper or pass them explicitly"
            )
        precompile(head.mlp, fast_math=self.fast_math)
        cls = DeviceClass(name, model, head, float(lo), float(hi))
        self._classes[name] = cls
        return cls

    @property
    def device_classes(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def device_class(self, name: str) -> DeviceClass:
        try:
            return self._classes[name]
        except KeyError:
            raise ValidationError(f"unknown device class {name!r}") from None

    def device_class_of(self, node_id: str) -> DeviceClass:
        """The registered class of one node (its model/head/clamps)."""
        return self.device_class(self.profile_of(node_id).device_class)

    def profile_of(self, node_id: str) -> NodeProfile:
        try:
            return self._profiles[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    # --------------------------------------------------------- registration
    def register_node(self, node_id: str, sensor: "IPMISensor | None" = None,
                      seed: int = 0,
                      profile: "NodeProfile | None" = None) -> None:
        if node_id in self._nodes:
            raise ValidationError(f"node {node_id!r} already registered")
        profile = profile or NodeProfile(seed=seed)
        if profile.device_class not in self._classes:
            raise ValidationError(
                f"node {node_id!r} names unregistered device class "
                f"{profile.device_class!r}; register_device_class it first"
            )
        if sensor is None:
            sensor = IPMISensor(
                self.spec, interval_s=profile.interval_s,
                seed=profile.seed if profile.seed else seed,
            )
        self._nodes[node_id] = sensor
        self._profiles[node_id] = profile
        self._logs[node_id] = MonitorLog(node_id)
        self._health[node_id] = NodeHealth(node_id)

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def log(self, node_id: str) -> MonitorLog:
        try:
            return self._logs[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    def health(self, node_id: str) -> NodeHealth:
        try:
            return self._health[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    def sinks_for(self, node_id: str) -> list:
        """The sinks one node's finished chunks flow into (log first)."""
        return [MemoryLogSink(self._logs[node_id]), *self._sinks]

    # -------------------------------------------------------- calibration
    def set_calibration(
        self, node_id: str, transform: "CompensationTransform | None"
    ) -> None:
        """Register (or clear, with ``None``) a node's compensation.

        The transform is applied by the pipeline's calibrate stage to
        every subsequent run's IM readings, upstream of gating and
        restoration. Publishes the fitted coefficients as gauges so a
        drifting fleet is visible on the scrape surface.
        """
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        if transform is None:
            self._calibration.pop(node_id, None)
            return
        if not isinstance(transform, CompensationTransform):
            raise ValidationError(
                f"not a CompensationTransform: {transform!r}"
            )
        self._calibration[node_id] = transform
        registry = self.registry
        for name, help_text, value in (
            ("repro_calib_lag_seconds",
             "Registered clock-lag compensation per node.",
             float(transform.lag_s)),
            ("repro_calib_scale",
             "Registered affine correction gain per node.", transform.scale),
            ("repro_calib_offset_watts",
             "Registered affine correction offset per node.",
             transform.offset_w),
        ):
            registry.gauge(name, help_text, ("node",)).labels(
                node=node_id
            ).set(value)

    def calibration_for(self, node_id: str) -> "CompensationTransform | None":
        """The node's registered compensation, or None when uncalibrated."""
        return self._calibration.get(node_id)

    def calibrate_node(
        self,
        node_id: str,
        bundle: TraceBundle,
        reference: np.ndarray,
        max_lag_s: "int | None" = None,
        drift: "DriftConfig | bool | None" = None,
    ) -> CalibrationEstimate:
        """Calibrate one node's feed against a dense reference channel.

        Samples the node's sensor over the calibration ``bundle``
        (with the policy's transient retry), fits the error model against
        ``reference`` (the direct-measurement node power of the same run,
        :meth:`~repro.sensors.DirectPowerSensor.measure_node`), registers
        the resulting compensation, and returns the estimate. Pass
        ``drift=True`` (or a :class:`~repro.calib.DriftConfig`) for
        windowed drift tracking instead of a single static fit.
        """
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        with use_registry(self.registry), use_tracer(self.tracer):
            with self.tracer.span("calib.estimate"):
                readings = sample_with_retry(
                    self._nodes[node_id], bundle, self.policy,
                    self._health[node_id],
                )
                if drift:
                    config = drift if isinstance(drift, DriftConfig) \
                        else DriftConfig(max_lag_s=max_lag_s)
                    estimate, tracker = estimate_drift_calibration(
                        readings, reference, config
                    )
                    self.registry.counter(
                        "repro_calib_drift_refits_total",
                        "Drift-tracker windows whose trigger fired.",
                        ("node",),
                    ).labels(node=node_id).inc(tracker.refits)
                else:
                    estimate = estimate_calibration(
                        readings, reference, max_lag_s=max_lag_s
                    )
        self.registry.counter(
            "repro_calib_estimates_total",
            "Calibration estimates fitted per node.", ("node",),
        ).labels(node=node_id).inc()
        self.set_calibration(node_id, estimate.transform())
        return estimate

    # ------------------------------------------------------------ clamps
    def _clamps(self) -> tuple[float, float]:
        """Default-class power range (per-node gating uses the node's class)."""
        return self._classes[DEFAULT_DEVICE_CLASS].clamps

    # ----------------------------------------------------- cluster budget
    def cluster_allocations(
        self, cap_w: float, demands: "dict[str, float] | None" = None
    ) -> dict[str, float]:
        """Water-fill one facility cap across the registered (mixed) fleet.

        Each node's floor and ceiling come from its device class's power
        clamps, so a 340 W GPU node and a 90 W CPU node compete for the
        same budget on honest terms. ``demands`` overrides per-node demand
        in watts; nodes not named default to their latest restored power
        (their class floor when nothing has been logged yet).
        """
        if not self._nodes:
            raise ValidationError("no nodes registered")
        entries = []
        for node_id in self._nodes:
            lo, hi = self.device_class_of(node_id).clamps
            if demands is not None and node_id in demands:
                want = float(demands[node_id])
            else:
                log = self._logs[node_id]
                want = float(log.p_node[-1]) if len(log) else lo
            entries.append(NodeDemand(node_id, min(max(want, lo), hi), lo, hi))
        return ClusterPowerBudget(cap_w).allocate(entries)

    # ----------------------------------------------------------- governor
    def set_governor(self, governor: "SamplingGovernor | None") -> None:
        """Attach (or detach, with ``None``) the adaptive-sampling governor.

        With a governor attached, the ingest stage thins each node's IM
        feed at the node's current stride and every finished run feeds its
        restored confidence back into the schedule.
        """
        if governor is not None and not isinstance(governor, SamplingGovernor):
            raise ValidationError(f"not a SamplingGovernor: {governor!r}")
        self._governor = governor

    @property
    def governor(self) -> "SamplingGovernor | None":
        return self._governor

    def sampling_stride(self, node_id: str) -> int:
        """The IM thinning stride for a node's next run (1 = dense)."""
        if self._governor is None:
            return 1
        return self._governor.stride_for(node_id)

    def sampling_offset(self, node_id: str) -> int:
        """The surviving residue class for a node's next run (0 = aligned)."""
        if self._governor is None:
            return 0
        return self._governor.offset_for(node_id)

    # --------------------------------------------------------- observation
    def observe_run(
        self, node_id: str, bundle: TraceBundle, online: bool = True,
        chunk_size: "int | None" = None,
    ) -> MonitorResult:
        """Ingest one run from a node; returns the restored estimates.

        ``chunk_size`` streams the run through the pipeline in fixed-size
        chunks (bounded restorer state; bit-identical output); the default
        processes it as one chunk.

        Never raises for a *failing feed* under the default policy: sensor
        outages, short bundles, and fully-gated streams degrade to
        model-only restoration (``result.mode == "model_only"``, samples
        flagged in ``provenance``). With
        ``ResiliencePolicy(degrade_to_model_only=False)`` those conditions
        raise instead — outages as :class:`~repro.errors.SensorError`,
        unusable runs as :class:`~repro.errors.ValidationError`.
        """
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        health = self._health[node_id]
        before = (health.retries, health.gated_readings,
                  health.outages, health.degraded_runs)
        # Route the pipeline's ambient instrumentation (TRR/SRR spans, the
        # online fine-tune counters, the perf dispatch mix) into this
        # service's registry and tracer for the duration of the run, and
        # price the whole observation against the sampling budget.
        with use_registry(self.registry), use_tracer(self.tracer), \
                self.profiler.measure() as cost:
            try:
                with self.tracer.span("monitor.observe_run"):
                    result = self._observe(node_id, bundle, online, chunk_size)
            except Exception:
                self.registry.counter(
                    "repro_monitor_failed_runs_total",
                    "observe_run calls that raised.", ("node",),
                ).labels(node=node_id).inc()
                raise
            cost.samples = len(result)
        self._emit_run_metrics(node_id, result, before)
        return result

    def _observe(
        self, node_id: str, bundle: TraceBundle, online: bool,
        chunk_size: "int | None" = None,
    ) -> MonitorResult:
        """One run through the staged pipeline (ingest → … → sink)."""
        ctx = ObservationContext(self, node_id, bundle, online, chunk_size)
        chunks = self._pipeline.run(ctx, input_chunks(ctx))
        result = self._assemble(ctx, chunks)
        self._finish_run(ctx, result)
        return result

    @staticmethod
    def _assemble(ctx: ObservationContext, chunks) -> MonitorResult:
        """Concatenate the pipeline's finished chunks into one result."""
        if not chunks:
            return MonitorResult(
                p_node=np.empty(0), p_cpu=np.empty(0), p_mem=np.empty(0),
                mode=ctx.mode, provenance=np.empty(0, dtype=np.uint8),
            )
        return MonitorResult(
            p_node=np.concatenate([c.p_node for c in chunks]),
            p_cpu=np.concatenate([c.p_cpu for c in chunks]),
            p_mem=np.concatenate([c.p_mem for c in chunks]),
            mode=ctx.mode,
            provenance=np.concatenate([c.provenance for c in chunks]),
            p_gpu=(
                np.concatenate([c.p_gpu for c in chunks])
                if chunks[0].p_gpu is not None else None
            ),
        )

    def _finish_run(self, ctx: ObservationContext, result: MonitorResult) -> None:
        """End-of-run health bookkeeping, shared by all modes."""
        health = ctx.health
        if ctx.degrade_reason is not None:
            health.record_outage_run(ctx.degrade_reason)
        else:
            retried = health.transient_failures - ctx.transients_before
            gap_samples = int(result.model_only_mask.sum())
            if ctx.gated or retried or gap_samples:
                health.record_degraded_run(
                    f"{ctx.gated} reading(s) gated, {retried} transient "
                    f"failure(s) retried, {gap_samples} sample(s) restored "
                    f"without an anchor"
                )
            else:
                health.record_healthy_run()
        self._apply_governor(ctx, result)

    def _apply_governor(
        self, ctx: ObservationContext, result: MonitorResult
    ) -> None:
        """Feed one finished run back into the sampling schedule."""
        governor = self._governor
        if governor is None or len(result) == 0:
            return
        budget = governor.policy.pinned_budget_fraction
        if budget is None:
            budget = self.profiler.budget_fraction
        with self.tracer.span("sched.decide"):
            decision = governor.update(
                ctx.node_id, float(result.confidence().mean()), float(budget)
            )
        registry = self.registry
        registry.gauge(
            "repro_sched_stride",
            "Sampling-governor IM reading stride per node (1 = dense).",
            ("node",),
        ).labels(node=ctx.node_id).set(decision.stride)
        registry.gauge(
            "repro_sched_interval_seconds",
            "Effective IM sampling interval per node under the governor.",
            ("node",),
        ).labels(node=ctx.node_id).set(
            float(ctx.sensor.interval_s * decision.stride)
        )
        registry.counter(
            "repro_sched_decisions_total",
            "Governor decisions by node and direction.",
            ("node", "direction"),
        ).labels(node=ctx.node_id, direction=decision.direction).inc()

    def _emit_run_metrics(
        self, node_id: str, result: MonitorResult, before: tuple
    ) -> None:
        """Publish one finished run's counters from the health deltas."""
        registry = self.registry
        health = self._health[node_id]
        registry.counter(
            "repro_monitor_runs_total",
            "Observed runs by node and restoration mode.", ("node", "mode"),
        ).labels(node=node_id, mode=result.mode).inc()
        deltas = (
            ("repro_monitor_retries_total",
             "IM sample retries after transient failures.", health.retries),
            ("repro_monitor_gated_readings_total",
             "IM readings dropped by the plausibility gate.",
             health.gated_readings),
            ("repro_monitor_outage_runs_total",
             "Runs degraded to model-only restoration.", health.outages),
            ("repro_monitor_degraded_runs_total",
             "Runs that needed retries, gating, or anchorless samples.",
             health.degraded_runs),
        )
        for (name, help_text, after_value), before_value in zip(deltas, before):
            if after_value > before_value:
                registry.counter(name, help_text, ("node",)).labels(
                    node=node_id
                ).inc(after_value - before_value)
        prov = result.provenance
        if prov is None:
            prov = np.full(len(result), PROV_RESTORED, dtype=np.uint8)
        counts = np.bincount(prov, minlength=max(_PROV_LABELS) + 1)
        samples = registry.counter(
            "repro_monitor_samples_total",
            "Logged samples by provenance.", ("provenance",),
        )
        for code, label in _PROV_LABELS.items():
            if counts[code]:
                samples.labels(provenance=label).inc(int(counts[code]))
        registry.histogram(
            "repro_monitor_readings_per_run",
            "Measured IM readings surviving per observed run.",
            buckets=_READINGS_BUCKETS,
        ).observe(int(counts[PROV_MEASURED]))
        energy = registry.counter(
            "repro_monitor_component_energy_joules_total",
            "Attributed component energy by node (1 Sa/s: watts sum to "
            "joules).",
            ("node", "component"),
        )
        for component, series in result.components.items():
            total = float(series.sum())
            if total > 0.0:
                energy.labels(node=node_id, component=component).inc(total)

    def adapt(self, node_id: str, bundle: TraceBundle) -> None:
        """Active-learning round on one node's unlabeled run (§4.1)."""
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        readings = self._nodes[node_id].sample(bundle)
        self.model.active_learning([(bundle.pmcs.matrix, readings)])
