"""Deployable monitoring service.

The paper deploys HighRPM "as a service on the control node ... shared with
other computing nodes" (§4.1). :class:`PowerMonitorService` is that service:
one trained HighRPM instance, many registered nodes, each with its own
sensors; ``observe_run`` ingests a node's run and appends restored
high-resolution estimates to that node's log.

The IM feed is the unreliable half of the paper's fusion, so ``observe_run``
is defensive end to end (see :mod:`repro.monitor.resilience` and
``docs/robustness.md``): transient sensor failures are retried with
backoff, implausible readings are gated against the Algorithm-1 power
clamps, and a dead feed — a full outage, a run shorter than the IM
interval, or a fully-gated stream — degrades to model-only restoration
with every sample flagged in the log's provenance channel instead of
failing the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.highrpm import (
    PROV_MEASURED,
    PROV_MODEL_ONLY,
    PROV_RESTORED,
    HighRPM,
    MonitorResult,
)
from ..errors import SensorError, ValidationError
from ..hardware.platform import PlatformSpec
from ..obs import (
    DEFAULT_SAMPLE_PERIOD_S,
    MetricsRegistry,
    OverheadProfiler,
    Tracer,
    get_registry,
    system_clock,
    use_registry,
    use_tracer,
)
from ..perf import precompile
from ..sensors.base import SparseReadings
from ..sensors.ipmi import IPMISensor
from ..types import TraceBundle
from .resilience import NodeHealth, ResiliencePolicy, gate_readings, sample_with_retry

#: Human-readable provenance labels for the sample-mix counter.
_PROV_LABELS = {
    PROV_MEASURED: "measured",
    PROV_RESTORED: "restored",
    PROV_MODEL_ONLY: "model_only",
}

#: IM readings that survive per run: a smoke trace keeps a handful, a
#: campaign trace a few hundred.
_READINGS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0)


@dataclass
class MonitorLog:
    """Accumulated restored estimates for one node."""

    node_id: str
    p_node: np.ndarray = field(default_factory=lambda: np.empty(0))
    p_cpu: np.ndarray = field(default_factory=lambda: np.empty(0))
    p_mem: np.ndarray = field(default_factory=lambda: np.empty(0))
    provenance: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint8))
    runs: list[str] = field(default_factory=list)
    modes: list[str] = field(default_factory=list)

    def append(self, result: MonitorResult, workload: str) -> None:
        n = len(result)
        for name in ("p_cpu", "p_mem"):
            if getattr(result, name).shape[0] != n:
                raise ValidationError(
                    f"monitor result is inconsistent: {name} has "
                    f"{getattr(result, name).shape[0]} samples, p_node has {n}"
                )
        prov = result.provenance
        if prov is None:
            prov = np.full(n, PROV_RESTORED, dtype=np.uint8)
        elif prov.shape[0] != n:
            raise ValidationError(
                f"monitor result is inconsistent: provenance has "
                f"{prov.shape[0]} samples, p_node has {n}"
            )
        self.p_node = np.concatenate([self.p_node, result.p_node])
        self.p_cpu = np.concatenate([self.p_cpu, result.p_cpu])
        self.p_mem = np.concatenate([self.p_mem, result.p_mem])
        self.provenance = np.concatenate([self.provenance, prov.astype(np.uint8)])
        self.runs.append(workload)
        self.modes.append(result.mode)

    def __len__(self) -> int:
        return int(self.p_node.shape[0])

    @property
    def model_only_mask(self) -> np.ndarray:
        """True where the logged estimate ran without a usable IM anchor."""
        return self.provenance == PROV_MODEL_ONLY

    def model_only_fraction(self) -> float:
        """Share of logged samples produced without IM backing."""
        if len(self) == 0:
            return 0.0
        return float(self.model_only_mask.mean())

    def summary(self) -> "dict[str, object]":
        """Headline counters for one node's log (runs, sample provenance)."""
        prov = self.provenance
        return {
            "node_id": self.node_id,
            "runs": len(self.runs),
            "samples": len(self),
            "measured": int((prov == PROV_MEASURED).sum()),
            "restored": int((prov == PROV_RESTORED).sum()),
            "model_only": int((prov == PROV_MODEL_ONLY).sum()),
            "model_only_fraction": self.model_only_fraction(),
        }


class PowerMonitorService:
    """One HighRPM model serving many nodes.

    Nodes are registered with their own IPMI sensor (per-node BMCs differ in
    noise and offset); runs are observed either online (DynamicTRR) or
    offline (StaticTRR). ``policy`` governs how a failing feed is handled —
    the default retries transients, gates implausible readings, and
    degrades to model-only restoration rather than raising.
    """

    def __init__(
        self,
        model: HighRPM,
        spec: PlatformSpec,
        policy: "ResiliencePolicy | None" = None,
        registry: "MetricsRegistry | None" = None,
        clock=None,
    ) -> None:
        model._require_fitted()
        self.model = model
        self.spec = spec
        self.policy = policy or ResiliencePolicy()
        # Observability: metrics land in the given registry (default: the
        # ambient one at construction time), pipeline spans are timed with
        # the given clock (default: the process monotonic clock; tests pass
        # a ManualClock), and the profiler prices each observe_run against
        # the paper's 1 Sa/s sampling budget.
        self.registry = registry if registry is not None else get_registry()
        self.clock = clock if clock is not None else system_clock()
        self.tracer = Tracer(clock=self.clock, registry=self.registry)
        self.profiler = OverheadProfiler(
            clock=self.clock,
            sample_period_s=DEFAULT_SAMPLE_PERIOD_S,
            registry=self.registry,
        )
        # Compile the SRR forward pass up front: it serves every observe_run
        # on every node, so the one-time flatten cost should not land on the
        # first monitored trace.
        precompile(model.srr.model_)
        self._nodes: dict[str, IPMISensor] = {}
        self._logs: dict[str, MonitorLog] = {}
        self._health: dict[str, NodeHealth] = {}

    def register_node(self, node_id: str, sensor: "IPMISensor | None" = None,
                      seed: int = 0) -> None:
        if node_id in self._nodes:
            raise ValidationError(f"node {node_id!r} already registered")
        self._nodes[node_id] = sensor or IPMISensor(self.spec, seed=seed)
        self._logs[node_id] = MonitorLog(node_id)
        self._health[node_id] = NodeHealth(node_id)

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def log(self, node_id: str) -> MonitorLog:
        try:
            return self._logs[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    def health(self, node_id: str) -> NodeHealth:
        try:
            return self._health[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    # ------------------------------------------------------------ clamps
    def _clamps(self) -> tuple[float, float]:
        """Physical power range used for plausibility gating."""
        lo = self.model.p_bottom
        hi = self.model.p_upper
        if lo is None:
            lo = self.spec.min_node_power_w
        if hi is None:
            hi = self.spec.max_node_power_w
        return float(lo), float(hi)

    # --------------------------------------------------------- observation
    def observe_run(
        self, node_id: str, bundle: TraceBundle, online: bool = True
    ) -> MonitorResult:
        """Ingest one run from a node; returns the restored estimates.

        Never raises for a *failing feed* under the default policy: sensor
        outages, short bundles, and fully-gated streams degrade to
        model-only restoration (``result.mode == "model_only"``, samples
        flagged in ``provenance``). With
        ``ResiliencePolicy(degrade_to_model_only=False)`` those conditions
        raise instead — outages as :class:`~repro.errors.SensorError`,
        unusable runs as :class:`~repro.errors.ValidationError`.
        """
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        health = self._health[node_id]
        before = (health.retries, health.gated_readings,
                  health.outages, health.degraded_runs)
        # Route the pipeline's ambient instrumentation (TRR/SRR spans, the
        # online fine-tune counters, the perf dispatch mix) into this
        # service's registry and tracer for the duration of the run, and
        # price the whole observation against the sampling budget.
        with use_registry(self.registry), use_tracer(self.tracer), \
                self.profiler.measure() as cost:
            try:
                with self.tracer.span("monitor.observe_run"):
                    result = self._observe(node_id, bundle, online)
            except Exception:
                self.registry.counter(
                    "repro_monitor_failed_runs_total",
                    "observe_run calls that raised.", ("node",),
                ).labels(node=node_id).inc()
                raise
            cost.samples = len(result)
        self._emit_run_metrics(node_id, result, before)
        return result

    def _observe(
        self, node_id: str, bundle: TraceBundle, online: bool
    ) -> MonitorResult:
        """The undecorated observation logic (retry → gate → restore)."""
        sensor = self._nodes[node_id]
        health = self._health[node_id]
        policy = self.policy
        tracer = self.tracer

        readings: "SparseReadings | None"
        transients_before = health.transient_failures
        try:
            with tracer.span("monitor.im_sample"):
                readings = sample_with_retry(sensor, bundle, policy, health)
        except SensorError as exc:
            # Outage (possibly injected): retries exhausted or every
            # reading dropped at the source.
            if not policy.degrade_to_model_only:
                health.record_outage_run(str(exc))
                raise
            return self._observe_model_only(
                node_id, bundle, reason=f"sensor outage: {exc}"
            )
        except ValidationError as exc:
            # The sensor cannot cover this bundle at all (run shorter than
            # the IM interval / readout delay).
            if not policy.degrade_to_model_only:
                health.record_outage_run(str(exc))
                raise ValidationError(
                    f"bundle {bundle.workload!r} ({len(bundle)} samples) is too "
                    f"short for node {node_id!r}'s IM sensor "
                    f"(interval {sensor.interval_s} s): {exc}"
                ) from exc
            return self._observe_model_only(
                node_id, bundle,
                reason=f"run too short for the IM interval: {exc}",
            )

        gated = 0
        if policy.gate_readings:
            lo, hi = self._clamps()
            with tracer.span("monitor.gate"):
                readings, gated = gate_readings(
                    readings, lo, hi, policy.gate_margin_fraction
                )
            health.gated_readings += gated

        if readings is None or len(readings) < policy.min_readings(online):
            n_left = 0 if readings is None else len(readings)
            reason = (
                f"only {n_left} plausible reading(s) survived "
                f"({gated} gated); "
                f"{'dynamic' if online else 'static'} restoration needs "
                f">= {policy.min_readings(online)}"
            )
            if not policy.degrade_to_model_only:
                health.record_outage_run(reason)
                raise ValidationError(
                    f"node {node_id!r}, run {bundle.workload!r}: {reason}"
                )
            return self._observe_model_only(node_id, bundle, reason=reason)

        monitor = self.model.monitor_online if online else self.model.monitor_offline
        with tracer.span("monitor.restore"):
            result = monitor(bundle.pmcs.matrix, readings)
        with tracer.span("monitor.log_append"):
            self._logs[node_id].append(result, bundle.workload)
        retried = health.transient_failures - transients_before
        gap_samples = int(result.model_only_mask.sum())
        if gated or retried or gap_samples:
            health.record_degraded_run(
                f"{gated} reading(s) gated, {retried} transient failure(s) "
                f"retried, {gap_samples} sample(s) restored without an anchor"
            )
        else:
            health.record_healthy_run()
        return result

    def _observe_model_only(
        self, node_id: str, bundle: TraceBundle, reason: str
    ) -> MonitorResult:
        """Degraded path: restore from the model alone and flag the log."""
        with self.tracer.span("monitor.restore"):
            result = self.model.monitor_model_only(bundle.pmcs.matrix)
        with self.tracer.span("monitor.log_append"):
            self._logs[node_id].append(result, bundle.workload)
        self._health[node_id].record_outage_run(reason)
        return result

    def _emit_run_metrics(
        self, node_id: str, result: MonitorResult, before: tuple
    ) -> None:
        """Publish one finished run's counters from the health deltas."""
        registry = self.registry
        health = self._health[node_id]
        registry.counter(
            "repro_monitor_runs_total",
            "Observed runs by node and restoration mode.", ("node", "mode"),
        ).labels(node=node_id, mode=result.mode).inc()
        deltas = (
            ("repro_monitor_retries_total",
             "IM sample retries after transient failures.", health.retries),
            ("repro_monitor_gated_readings_total",
             "IM readings dropped by the plausibility gate.",
             health.gated_readings),
            ("repro_monitor_outage_runs_total",
             "Runs degraded to model-only restoration.", health.outages),
            ("repro_monitor_degraded_runs_total",
             "Runs that needed retries, gating, or anchorless samples.",
             health.degraded_runs),
        )
        for (name, help_text, after_value), before_value in zip(deltas, before):
            if after_value > before_value:
                registry.counter(name, help_text, ("node",)).labels(
                    node=node_id
                ).inc(after_value - before_value)
        prov = result.provenance
        if prov is None:
            prov = np.full(len(result), PROV_RESTORED, dtype=np.uint8)
        counts = np.bincount(prov, minlength=max(_PROV_LABELS) + 1)
        samples = registry.counter(
            "repro_monitor_samples_total",
            "Logged samples by provenance.", ("provenance",),
        )
        for code, label in _PROV_LABELS.items():
            if counts[code]:
                samples.labels(provenance=label).inc(int(counts[code]))
        registry.histogram(
            "repro_monitor_readings_per_run",
            "Measured IM readings surviving per observed run.",
            buckets=_READINGS_BUCKETS,
        ).observe(int(counts[PROV_MEASURED]))

    def adapt(self, node_id: str, bundle: TraceBundle) -> None:
        """Active-learning round on one node's unlabeled run (§4.1)."""
        if node_id not in self._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        readings = self._nodes[node_id].sample(bundle)
        self.model.active_learning([(bundle.pmcs.matrix, readings)])
