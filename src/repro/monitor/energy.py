"""Energy accounting over power traces."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from ..types import PowerTrace


def energy_of(trace: PowerTrace) -> float:
    """Total energy in joules."""
    return trace.energy_joules()


def peak_of(trace: PowerTrace) -> float:
    """Peak power in watts."""
    return trace.peak_power()


@dataclass(frozen=True)
class EnergyAccount:
    """Summary statistics for one run, as the Fig. 1 analysis reports them."""

    energy_j: float
    mean_w: float
    peak_w: float
    time_above_cap_s: float
    cap_w: "float | None" = None

    @staticmethod
    def from_trace(trace: PowerTrace, cap_w: "float | None" = None) -> "EnergyAccount":
        if len(trace) == 0:
            raise ValidationError("cannot account an empty trace")
        above = 0.0
        if cap_w is not None:
            above = float((trace.values > cap_w).sum() / trace.sample_rate_hz)
        return EnergyAccount(
            energy_j=trace.energy_joules(),
            mean_w=trace.mean_power(),
            peak_w=trace.peak_power(),
            time_above_cap_s=above,
            cap_w=cap_w,
        )

    @property
    def energy_kj(self) -> float:
        return self.energy_j / 1e3
