"""Cluster-level power budgeting on restored estimates.

The paper's introduction motivates power monitoring with cluster energy
management: a facility cap must be divided across nodes, and the quality
of that division depends on how current each node's power picture is.
:class:`ClusterPowerBudget` implements proportional water-filling:

* each node gets at least its floor (idle power — you cannot allocate
  below what the hardware draws);
* the remaining budget is split proportionally to *restored demand* (the
  node's recent HighRPM estimate), iterating so no node exceeds its cap.

This is deliberately simple — the point is that its inputs are per-second
restored power, which only HighRPM-style monitoring can provide at IPMI
deployment cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CappingError, ValidationError


@dataclass(frozen=True)
class NodeDemand:
    """One node's allocation request."""

    node_id: str
    demand_w: float  # restored recent power (what it wants)
    floor_w: float  # idle draw (what it gets no matter what)
    ceiling_w: float  # its own physical/administrative cap

    def __post_init__(self) -> None:
        if self.demand_w < 0 or self.floor_w < 0:
            raise ValidationError("demand and floor must be non-negative")
        if self.ceiling_w < self.floor_w:
            raise ValidationError(
                f"{self.node_id}: ceiling {self.ceiling_w} below floor {self.floor_w}"
            )


class ClusterPowerBudget:
    """Water-filling allocator over :class:`NodeDemand` entries."""

    def __init__(self, total_budget_w: float) -> None:
        if total_budget_w <= 0:
            raise ValidationError("total budget must be positive")
        self.total_budget_w = float(total_budget_w)

    def allocate(self, demands: "list[NodeDemand]") -> dict[str, float]:
        """Per-node power allocations summing to ≤ the total budget.

        Raises :class:`CappingError` when the floors alone exceed the
        budget — the cluster cannot run at this cap.
        """
        if not demands:
            raise ValidationError("no nodes to allocate")
        ids = [d.node_id for d in demands]
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate node ids")
        floors = np.array([d.floor_w for d in demands])
        ceilings = np.array([d.ceiling_w for d in demands])
        demand = np.array([max(d.demand_w, d.floor_w) for d in demands])
        demand = np.minimum(demand, ceilings)

        if floors.sum() > self.total_budget_w:
            raise CappingError(
                f"node floors ({floors.sum():.0f} W) exceed the cluster "
                f"budget ({self.total_budget_w:.0f} W)"
            )
        # Everyone fits at full demand: grant it.
        if demand.sum() <= self.total_budget_w:
            return dict(zip(ids, demand.astype(float)))

        # Water-filling: grant floors, then split the surplus proportionally
        # to (demand - floor), iterating as nodes hit their ceilings.
        alloc = floors.astype(float).copy()
        active = np.ones(len(demands), dtype=bool)
        remaining = self.total_budget_w - alloc.sum()
        for _ in range(len(demands) + 1):
            want = np.where(active, np.maximum(demand - alloc, 0.0), 0.0)
            total_want = want.sum()
            if total_want <= 1e-9 or remaining <= 1e-9:
                break
            grant = want / total_want * min(remaining, total_want)
            headroom = ceilings - alloc
            grant = np.minimum(grant, headroom)
            alloc += grant
            remaining = self.total_budget_w - alloc.sum()
            newly_capped = (ceilings - alloc) <= 1e-9
            active &= ~newly_capped
        return dict(zip(ids, alloc))

    def throttle_factors(self, demands: "list[NodeDemand]") -> dict[str, float]:
        """Allocation ÷ demand per node (1.0 = unthrottled)."""
        alloc = self.allocate(demands)
        out = {}
        for d in demands:
            want = max(d.demand_w, d.floor_w)
            out[d.node_id] = min(alloc[d.node_id] / want, 1.0) if want > 0 else 1.0
        return out
