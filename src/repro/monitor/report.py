"""Operator reports from monitoring logs.

Turns a :class:`~repro.monitor.service.MonitorLog` (or raw restored arrays)
into the text report an operator actually reads: per-run energy and peak,
anomaly summary, and terminal sparklines. Everything is plain text so it
can be mailed from a cron job on a head node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..eval.ascii_plot import sparkline, strip_chart
from ..types import PowerTrace
from .anomaly import PowerAnomalyDetector
from .service import MonitorLog


@dataclass(frozen=True)
class RunSummary:
    """Per-run roll-up used by the report."""

    workload: str
    duration_s: int
    energy_kj: float
    mean_w: float
    peak_w: float
    n_spikes: int
    n_level_shifts: int


def summarise_runs(
    log: MonitorLog,
    run_lengths: "list[int] | None" = None,
    detector: "PowerAnomalyDetector | None" = None,
) -> list[RunSummary]:
    """Split a node's log back into runs and roll each up.

    ``run_lengths`` gives each run's sample count; when omitted the log is
    treated as a single run.
    """
    if len(log) == 0:
        raise ValidationError(f"log for {log.node_id} is empty")
    lengths = run_lengths or [len(log)]
    if sum(lengths) != len(log):
        raise ValidationError(
            f"run lengths sum to {sum(lengths)} but the log has {len(log)}"
        )
    names = log.runs if len(log.runs) == len(lengths) else [
        f"run-{i}" for i in range(len(lengths))
    ]
    det = detector or PowerAnomalyDetector()
    out: list[RunSummary] = []
    start = 0
    for name, n in zip(names, lengths):
        seg = log.p_node[start : start + n]
        anomalies = det.detect(seg)
        out.append(
            RunSummary(
                workload=name,
                duration_s=n,
                energy_kj=PowerTrace(np.maximum(seg, 0.0)).energy_joules() / 1e3,
                mean_w=float(seg.mean()),
                peak_w=float(seg.max()),
                n_spikes=sum(1 for a in anomalies if a.kind == "spike"),
                n_level_shifts=sum(1 for a in anomalies if a.kind == "level_shift"),
            )
        )
        start += n
    return out


def render_node_report(
    log: MonitorLog,
    run_lengths: "list[int] | None" = None,
    detector: "PowerAnomalyDetector | None" = None,
    width: int = 60,
) -> str:
    """The full text report for one node."""
    summaries = summarise_runs(log, run_lengths, detector)
    lines = [
        f"power report — {log.node_id}",
        "=" * 64,
        f"{'run':>18} | {'dur s':>5} | {'kJ':>7} | {'mean W':>7} | "
        f"{'peak W':>7} | {'spk':>3} | {'shift':>5}",
        "-" * 64,
    ]
    for s in summaries:
        lines.append(
            f"{s.workload:>18} | {s.duration_s:5d} | {s.energy_kj:7.2f} | "
            f"{s.mean_w:7.1f} | {s.peak_w:7.1f} | {s.n_spikes:3d} | "
            f"{s.n_level_shifts:5d}"
        )
    lines.append("")
    lines.append("restored streams:")
    lines.append(
        strip_chart(
            {"node": log.p_node, "cpu": log.p_cpu, "mem": log.p_mem},
            width=width,
        )
    )
    total_kj = sum(s.energy_kj for s in summaries)
    lines.append("")
    lines.append(f"total restored energy: {total_kj:.2f} kJ over "
                 f"{len(log)} monitored seconds")
    return "\n".join(lines)
