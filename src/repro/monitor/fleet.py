"""Fleet front-end: many nodes, one shared model, batched inference.

The paper's deployment is one HighRPM service shared by many computing
nodes (§4.1). Observing the fleet one ``observe_run`` at a time pays every
per-call inference overhead — the ResModel frontier setup, the SRR
forward — once *per node per chunk*. :class:`FleetMonitor` interleaves the
registered nodes' runs chunk by chunk and, per tick, batches the
cross-node predict calls through the compiled flat-array layer:

* static runs' per-run ResModel trees are fused into
  :class:`~repro.perf.TreeStack` frontier descents over every node's
  pending chunk — one stack per PMC width, so CPU trees (10 counter
  columns) and GPU trees (16) each batch among themselves;
* each device class's attribution head maps every member node's restored
  chunk in one concatenated forward pass (two-way SRR for CPU classes,
  three-way GPUSRR for accelerated ones).

Both batched paths are bit-identical per node to the sequential
``observe_run`` pipeline (the compiled predictors are batch-size
independent), so fleet results equal single-node results exactly —
including on heterogeneous fleets.
"""

from __future__ import annotations

from ..core.highrpm import MonitorResult
from ..errors import ValidationError
from ..obs import use_registry, use_tracer
from ..perf.batch import TreeStack, single_tree_of
from ..types import TraceBundle
from .pipeline import ObservationContext, input_chunks
from .profile import apply_attribution


class _FleetRun:
    """One node's in-flight run (context, chunk source, collected output)."""

    __slots__ = ("ctx", "source", "chunks", "before", "exhausted")

    def __init__(self, ctx, source, before) -> None:
        self.ctx = ctx
        self.source = source
        self.chunks = []
        self.before = before
        self.exhausted = False


class FleetMonitor:
    """Interleaves runs from N registered nodes through one service.

    ``submit`` opens a run per node (at most one in flight per node);
    every ``tick`` advances each active run by one ``chunk_size`` chunk,
    batching ResModel and SRR inference across the fleet. ``observe_all``
    is the submit-and-drain convenience wrapper.
    """

    def __init__(self, service, chunk_size: int = 256) -> None:
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.service = service
        self.chunk_size = int(chunk_size)
        self._runs: "dict[str, _FleetRun]" = {}
        #: stage positions resolved by name once, so inserting a stage in
        #: build_pipeline (e.g. calibrate) cannot silently skew the
        #: interleaved per-stage apply() calls below.
        names = [s.name for s in service._pipeline.stages]
        self._restore_i = names.index("restore")
        self._attribute_i = names.index("attribute")
        #: per-PMC-width (member trees, stack) from the previous tick — the
        #: per-run trees are fixed for a run's whole lifetime, so
        #: consecutive ticks reuse one concatenated slot pool per width
        #: instead of rebuilding it. Keyed by identity (CompiledTree has no
        #: __eq__); holding the refs also pins the objects, so identity
        #: cannot be recycled.
        self._stack_cache: "dict[int, tuple[tuple, TreeStack]]" = {}

    @property
    def active_nodes(self) -> tuple:
        return tuple(self._runs)

    def submit(self, node_id: str, bundle: TraceBundle, online: bool = True) -> None:
        """Open one run for a node (ingest + gate happen here)."""
        service = self.service
        if node_id not in service._nodes:
            raise ValidationError(f"unknown node {node_id!r}; register it first")
        if node_id in self._runs:
            raise ValidationError(f"node {node_id!r} already has an active run")
        health = service._health[node_id]
        before = (health.retries, health.gated_readings,
                  health.outages, health.degraded_runs)
        ctx = ObservationContext(service, node_id, bundle, online, self.chunk_size)
        with use_registry(service.registry), use_tracer(service.tracer):
            try:
                with service.tracer.span("fleet.submit"):
                    service._pipeline.open_run(ctx)
            except Exception:
                service.registry.counter(
                    "repro_monitor_failed_runs_total",
                    "observe_run calls that raised.", ("node",),
                ).labels(node=node_id).inc()
                raise
        self._runs[node_id] = _FleetRun(ctx, input_chunks(ctx), before)

    def tick(self) -> "dict[str, MonitorResult]":
        """Advance every active run by one chunk; returns finished runs."""
        service = self.service
        pipeline = service._pipeline
        if not self._runs:
            return {}
        completed: "list[tuple[str, _FleetRun]]" = []
        with use_registry(service.registry), use_tracer(service.tracer), \
                service.profiler.measure() as cost:
            with service.tracer.span("fleet.tick"):
                cost.samples = self._advance(pipeline)
            for node_id in [nid for nid, r in self._runs.items() if r.exhausted]:
                run = self._runs.pop(node_id)
                pipeline.close_run(run.ctx)
                result = service._assemble(run.ctx, run.chunks)
                service._finish_run(run.ctx, result)
                completed.append((node_id, result, run.before))
        finished = {}
        for node_id, result, before in completed:
            service._emit_run_metrics(node_id, result, before)
            finished[node_id] = result
        return finished

    def _advance(self, pipeline) -> int:
        """One interleaved step: pre-restore stages → batched restore →
        batched attribute → post-attribute stages for every active run.
        Returns samples processed."""
        samples = 0
        n_stages = len(pipeline.stages)
        pending = []  # (run, chunk) ready for the restore stage
        for run in self._runs.values():
            chunk = next(run.source, None)
            if chunk is None:  # defensive: empty source
                run.exhausted = True
                continue
            samples += chunk.n_samples
            run.exhausted = chunk.final
            chunks = [chunk]
            for i in range(self._restore_i):  # ingest, calibrate, gate
                chunks = [c2 for c in chunks
                          for c2 in pipeline.apply(run.ctx, c, i)]
            pending.extend((run, c) for c in chunks)
        self._batch_residuals(pending)
        restored = []
        for run, chunk in pending:
            for c in pipeline.apply(run.ctx, chunk, self._restore_i):
                restored.append((run, c))
        self._batch_attribution(restored)
        for run, chunk in restored:
            chunks = [chunk]
            for i in range(self._attribute_i, n_stages):  # attribute, sink
                chunks = [c2 for c in chunks
                          for c2 in pipeline.apply(run.ctx, c, i)]
            run.chunks.extend(chunks)
        return samples

    def _batch_residuals(self, pending) -> None:
        """Pre-fill static chunks' ResModel outputs with TreeStack descents
        across nodes (the restore stage then skips its own call).

        A :class:`~repro.perf.TreeStack` concatenates its members' feature
        slots, so only trees over the same PMC width can fuse — chunks are
        grouped by ``pmcs.shape[1]`` and each width gets its own stack
        (CPU hosts batch with CPU hosts, GPU nodes with GPU nodes)."""
        groups: "dict[int, list]" = {}
        for run, chunk in pending:
            if run.ctx.mode != "static" or chunk.residual_hat is not None:
                continue
            tree = single_tree_of(run.ctx.restorer._trr.res_model_)
            if tree is None:
                continue
            groups.setdefault(chunk.pmcs.shape[1], []).append(
                (run, chunk, tree)
            )
        for width, batchable in groups.items():
            if len(batchable) < 2:
                continue  # nothing to amortize; per-chunk predict is identical
            members = tuple(tree for _, _, tree in batchable)
            cached = self._stack_cache.get(width)
            if cached is not None and cached[0] == members:
                stack = cached[1]
            else:
                stack = TreeStack(list(members))
                self._stack_cache[width] = (members, stack)
            parts = stack.predict([chunk.pmcs for _, chunk, _ in batchable])
            for (_, chunk, _), residual_hat in zip(batchable, parts):
                chunk.residual_hat = residual_hat

    def _batch_attribution(self, restored) -> None:
        """Pre-fill component splits with one forward per attribution head.

        Chunks are grouped by their run's head (i.e. by device class) and
        each head maps its group in a single ``predict_batched`` call —
        two-way heads fill (P_CPU, P_MEM), three-way heads also P_GPU."""
        groups: "dict[int, list]" = {}
        heads: "dict[int, object]" = {}
        for run, c in restored:
            if c.p_cpu is not None:
                continue
            key = id(run.ctx.head)
            heads[key] = run.ctx.head
            groups.setdefault(key, []).append((run, c))
        for key, todo in groups.items():
            if len(todo) < 2:
                continue
            with self.service.tracer.span("monitor.attribute"):
                splits = heads[key].predict_batched(
                    [(c.pmcs, c.p_node) for _, c in todo]
                )
            for (_, c), parts in zip(todo, splits):
                apply_attribution(c, parts)

    def observe_all(
        self, runs, online: bool = True
    ) -> "dict[str, MonitorResult]":
        """Submit ``{node_id: bundle}`` (or pairs) and tick until drained."""
        items = runs.items() if hasattr(runs, "items") else runs
        for node_id, bundle in items:
            self.submit(node_id, bundle, online=online)
        results: "dict[str, MonitorResult]" = {}
        while self._runs:
            results.update(self.tick())
        return results
