"""Phase primitives: the building blocks of a workload's activity program.

A phase describes a stretch of execution with a characteristic CPU/memory
intensity, optional periodic modulation (program loops ⇒ the long-term
trends TRR's spline captures) and optional bursts (phase changes ⇒ the
short-term fluctuations the ResModel captures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_generator


@dataclass(frozen=True)
class Phase:
    """One homogeneous region of a workload.

    Parameters
    ----------
    duration_s:
        Length of the phase in seconds (samples at 1 Sa/s).
    cpu, mem:
        Baseline CPU activity and memory intensity, both in [0, 1].
    cpu_amp, mem_amp:
        Amplitude of sinusoidal modulation (program main-loop breathing).
    period_s:
        Modulation period; ignored when both amplitudes are 0.
    burst_rate:
        Expected bursts per 100 s (Poisson). Bursts are short ±spikes.
    burst_mag:
        Burst magnitude in activity units.
    wander:
        Std-dev of the AR(1) random walk layered on the baseline.
    """

    duration_s: int
    cpu: float
    mem: float
    cpu_amp: float = 0.0
    mem_amp: float = 0.0
    period_s: float = 40.0
    burst_rate: float = 2.0
    burst_mag: float = 0.25
    wander: float = 0.02

    def __post_init__(self) -> None:
        if self.duration_s < 1:
            raise ValidationError("phase duration must be >= 1 s")
        for name in ("cpu", "mem"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValidationError(f"{name} must lie in [0, 1], got {v}")
        if self.period_s <= 0:
            raise ValidationError("period_s must be positive")
        if self.burst_rate < 0 or self.burst_mag < 0 or self.wander < 0:
            raise ValidationError("burst/wander parameters must be non-negative")

    def synthesize(
        self, rng: "int | np.random.Generator | None" = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-second (cpu_activity, mem_intensity) arrays for this phase."""
        g = as_generator(rng)
        n = self.duration_s
        t = np.arange(n, dtype=np.float64)
        phase0 = g.uniform(0, 2 * np.pi)

        def channel(base: float, amp: float, anti: bool) -> np.ndarray:
            wave = amp * np.sin(2 * np.pi * t / self.period_s + phase0 + (np.pi if anti else 0.0))
            # Slow AR(1) wander with stationary std = self.wander: activity
            # meanders smoothly at the seconds scale (abrupt changes come
            # from bursts and phase boundaries, not from this term).
            rho = 0.97
            eps = g.normal(0.0, self.wander * np.sqrt(1 - rho**2), size=n)
            drift = np.empty(n)
            acc = 0.0
            for i in range(n):
                acc = rho * acc + eps[i]
                drift[i] = acc
            return base + wave + drift

        cpu = channel(self.cpu, self.cpu_amp, anti=False)
        # Memory modulation runs in anti-phase with CPU: loop bodies
        # alternate compute-heavy and data-movement regions.
        mem = channel(self.mem, self.mem_amp, anti=True)

        # Bursts: Poisson arrivals of 1–3 s spikes on one or both channels.
        n_bursts = g.poisson(self.burst_rate * n / 100.0)
        for _ in range(n_bursts):
            start = int(g.integers(0, n))
            width = int(g.integers(1, 4))
            sign = 1.0 if g.random() < 0.5 else -1.0
            mag = self.burst_mag * g.uniform(0.5, 1.5)
            target = g.random()
            if target < 0.45:
                cpu[start : start + width] += sign * mag
            elif target < 0.9:
                mem[start : start + width] += sign * mag
            else:
                cpu[start : start + width] += sign * mag
                mem[start : start + width] -= sign * mag * 0.5
        return np.clip(cpu, 0.0, 1.0), np.clip(mem, 0.0, 1.0)


def constant(duration_s: int, cpu: float, mem: float, **kw) -> Phase:
    """A flat phase (idle regions, fixed kernels)."""
    return Phase(duration_s=duration_s, cpu=cpu, mem=mem, **kw)


def periodic(
    duration_s: int,
    cpu: float,
    mem: float,
    cpu_amp: float = 0.15,
    mem_amp: float = 0.1,
    period_s: float = 40.0,
    **kw,
) -> Phase:
    """A loop-dominated phase with visible power breathing."""
    return Phase(
        duration_s=duration_s,
        cpu=cpu,
        mem=mem,
        cpu_amp=cpu_amp,
        mem_amp=mem_amp,
        period_s=period_s,
        **kw,
    )


def burst_train(
    duration_s: int,
    cpu: float,
    mem: float,
    burst_rate: float = 12.0,
    burst_mag: float = 0.35,
    **kw,
) -> Phase:
    """A spiky phase (BFS frontier expansion, GC pauses, I/O waits)."""
    return Phase(
        duration_s=duration_s,
        cpu=cpu,
        mem=mem,
        burst_rate=burst_rate,
        burst_mag=burst_mag,
        **kw,
    )
