"""Synthetic benchmarking workloads.

Stands in for the paper's 96 real benchmarks (§5.3): 43 SPEC CPU 2017,
36 PARSEC, 12 HPCC, 2 Graph500, plus HPL-AI, SMG2000, and HPCG. Each
catalog entry is a phase-structured activity program with hidden
microarchitectural traits, so suites differ in distribution — which is what
the Table-3 seen/unseen protocol actually relies on.
"""

from .base import Workload
from .catalog import (
    BenchmarkCatalog,
    SUITE_SIZES,
    default_catalog,
    table3_splits,
)
from .phases import Phase, burst_train, constant, periodic
from .traces import TraceWorkload, load_trace_csv

__all__ = [
    "Workload",
    "Phase",
    "constant",
    "periodic",
    "burst_train",
    "BenchmarkCatalog",
    "SUITE_SIZES",
    "default_catalog",
    "table3_splits",
    "TraceWorkload",
    "load_trace_csv",
]
