"""Workload: a named sequence of phases plus hidden traits.

``synthesize`` walks the phase program, repeating it if the requested
duration exceeds one pass (benchmarks in the paper run 60 s to an hour and
are loop-dominated, so repetition is the realistic extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from ..errors import ValidationError
from ..hardware.pmu import WorkloadTraits
from ..utils.rng import as_generator
from .phases import Phase


@dataclass(frozen=True)
class Workload:
    """A benchmark's activity program.

    Attributes
    ----------
    name / suite:
        Catalog identity, e.g. ``("spec_gcc_03", "SPEC")``.
    phases:
        The phase program, executed in order and repeated as needed.
    traits:
        Hidden microarchitectural character (drives PMC generation).
    """

    name: str
    suite: str
    phases: tuple[Phase, ...]
    traits: WorkloadTraits = field(default_factory=WorkloadTraits)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValidationError(f"workload {self.name!r} has no phases")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def nominal_duration_s(self) -> int:
        """Length of one pass through the phase program."""
        return sum(p.duration_s for p in self.phases)

    def synthesize(
        self,
        duration_s: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cpu_activity, mem_intensity) arrays at 1 Sa/s.

        When ``duration_s`` is None, one pass of the program is produced.
        Longer requests repeat the program with fresh randomness per pass
        (run-to-run variation of the same benchmark).
        """
        g = as_generator(rng)
        total = self.nominal_duration_s if duration_s is None else int(duration_s)
        if total < 1:
            raise ValidationError("duration_s must be >= 1")
        cpu_parts: list[np.ndarray] = []
        mem_parts: list[np.ndarray] = []
        produced = 0
        while produced < total:
            for phase in self.phases:
                c, m = phase.synthesize(g)
                cpu_parts.append(c)
                mem_parts.append(m)
                produced += phase.duration_s
                if produced >= total:
                    break
        cpu = np.concatenate(cpu_parts)[:total]
        mem = np.concatenate(mem_parts)[:total]
        return cpu, mem


def mean_intensities(workload: Workload) -> tuple[float, float]:
    """Duration-weighted mean (cpu, mem) baselines of the phase program."""
    total = workload.nominal_duration_s
    cpu = sum(p.cpu * p.duration_s for p in workload.phases) / total
    mem = sum(p.mem * p.duration_s for p in workload.phases) / total
    return cpu, mem
