"""Per-suite workload generators.

Each function builds the workloads of one benchmark family with that
family's characteristic intensity distribution, phase structure, and trait
bias. Names and counts match §5.3: SPEC CPU 2017 (43), PARSEC (36),
HPCC (12), Graph500 (2), HPL-AI (1), SMG2000 (1), HPCG (1) — 96 total.
"""

from __future__ import annotations

from ..hardware.pmu import WorkloadTraits
from ..utils.rng import SeedSequenceFactory
from .base import Workload
from .phases import Phase, burst_train, constant, periodic

# Representative program names so traces read like real campaign logs.
_SPEC_NAMES = (
    "perlbench", "gcc", "bwaves", "mcf", "cactuBSSN", "lbm", "omnetpp",
    "wrf", "xalancbmk", "x264", "cam4", "pop2", "deepsjeng", "imagick",
    "leela", "nab", "exchange2", "fotonik3d", "roms", "xz", "blender",
    "parest", "povray", "namd", "botsalgn", "botsspar", "ilbdc", "fma3d",
    "swim", "mgrid", "applu", "galgel", "equake", "ammp", "lucas",
    "apsi", "gap", "vortex", "bzip2", "twolf", "sixtrack", "facerec", "eon",
)
_PARSEC_NAMES = (
    "blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
    "fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
    "vips", "x264p", "netdedup", "netferret", "netstreamcluster",
    "barnes", "cholesky", "fft_splash", "fmm", "lu_cb", "lu_ncb",
    "ocean_cp", "ocean_ncp", "radiosity", "radix", "raytrace_s",
    "volrend", "water_nsquared", "water_spatial", "kmeans", "pca",
    "histogram", "linear_regression", "string_match", "word_count",
)
_HPCC_NAMES = (
    "hpl", "dgemm", "stream", "ptrans", "randomaccess", "fft",
    "latency", "bandwidth", "stream_triad", "stream_copy",
    "randomring", "naturalring",
)


def _spec_workload(name: str, idx: int, rng) -> Workload:
    """SPEC CPU 2017: loop-dominated, mostly compute-bound; a handful of
    members (mcf, lbm, bwaves...) are memory-bound, like the real suite."""
    mem_bound = name in ("mcf", "lbm", "bwaves", "fotonik3d", "roms", "swim", "mgrid")
    cpu = rng.uniform(0.45, 0.75) if mem_bound else rng.uniform(0.6, 0.95)
    mem = rng.uniform(0.5, 0.85) if mem_bound else rng.uniform(0.08, 0.4)
    period = rng.uniform(25, 70)
    phases = (
        constant(int(rng.integers(4, 10)), cpu * 0.35, mem * 0.5, wander=0.01),  # setup
        periodic(
            int(rng.integers(70, 140)), cpu, mem,
            cpu_amp=rng.uniform(0.05, 0.2), mem_amp=rng.uniform(0.03, 0.12),
            period_s=period, burst_rate=rng.uniform(1.0, 4.0),
        ),
        periodic(
            int(rng.integers(40, 90)), min(cpu * 1.08, 1.0), mem * 0.9,
            cpu_amp=rng.uniform(0.04, 0.15), mem_amp=rng.uniform(0.02, 0.1),
            period_s=period * rng.uniform(0.8, 1.3), burst_rate=rng.uniform(0.5, 3.0),
        ),
    )
    traits = WorkloadTraits.random(
        rng, {"ipc": 0.1, "locality": 0.12 if not mem_bound else -0.18}
    )
    return Workload(f"spec_{name}", "SPEC", phases, traits)


def _parsec_workload(name: str, idx: int, rng) -> Workload:
    """PARSEC: parallel phases separated by barriers ⇒ visible alternation
    between full-throttle regions and synchronisation troughs."""
    cpu = rng.uniform(0.45, 0.9)
    mem = rng.uniform(0.15, 0.6)
    n_regions = int(rng.integers(2, 5))
    phases: list[Phase] = [constant(int(rng.integers(3, 8)), 0.2, 0.1, wander=0.01)]
    for _ in range(n_regions):
        phases.append(
            periodic(
                int(rng.integers(30, 80)), cpu, mem,
                cpu_amp=rng.uniform(0.08, 0.25), mem_amp=rng.uniform(0.04, 0.15),
                period_s=rng.uniform(15, 50), burst_rate=rng.uniform(2.0, 6.0),
            )
        )
        phases.append(  # barrier: cores spin or sleep, memory drains
            constant(int(rng.integers(2, 6)), cpu * 0.3, mem * 0.3, wander=0.015)
        )
    traits = WorkloadTraits.random(rng, {"branch": 0.02})
    return Workload(f"parsec_{name}", "PARSEC", tuple(phases), traits)


def _hpcc_workload(name: str, idx: int, rng) -> Workload:
    """HPCC: twelve kernels with sharply distinct CPU/memory characters.

    FFT is compute-dominated and Stream memory-dominated — the Fig. 2
    motivating pair.
    """
    profiles = {
        "hpl": (0.95, 0.3), "dgemm": (0.95, 0.2), "stream": (0.3, 0.95),
        "ptrans": (0.6, 0.7), "randomaccess": (0.4, 0.88), "fft": (0.9, 0.38),
        "latency": (0.25, 0.45), "bandwidth": (0.35, 0.8),
        "stream_triad": (0.32, 0.92), "stream_copy": (0.28, 0.9),
        "randomring": (0.45, 0.6), "naturalring": (0.5, 0.55),
    }
    cpu, mem = profiles[name]
    phases = (
        constant(int(rng.integers(3, 8)), 0.25, 0.2, wander=0.01),
        periodic(
            int(rng.integers(80, 160)), cpu, mem,
            cpu_amp=0.07 if cpu > 0.7 else 0.04,
            mem_amp=0.08 if mem > 0.7 else 0.03,
            period_s=rng.uniform(30, 60), burst_rate=rng.uniform(1.0, 3.0),
        ),
    )
    bias = {"locality": -0.3, "mem": 0.2} if mem > 0.7 else {"ipc": 0.15, "locality": 0.2}
    return Workload(f"hpcc_{name}", "HPCC", phases, WorkloadTraits.random(rng, bias))


def _graph500_workload(name: str, idx: int, rng) -> Workload:
    """Graph500 BFS/SSSP: frontier expansion makes power extremely spiky —
    the Fig. 1 motivating workload."""
    phases = (
        constant(int(rng.integers(5, 10)), 0.3, 0.4, wander=0.02),  # graph gen
        burst_train(
            int(rng.integers(60, 120)), 0.55, 0.75,
            burst_rate=16.0, burst_mag=0.4, wander=0.04,
        ),
        burst_train(
            int(rng.integers(40, 80)), 0.65, 0.7,
            burst_rate=12.0, burst_mag=0.35, wander=0.03,
        ),
    )
    traits = WorkloadTraits.random(rng, {"locality": -0.3, "branch": 0.06, "mem": 0.15})
    return Workload(f"graph500_{name}", "Graph500", phases, traits)


def _single_workload(name: str, suite: str, cpu: float, mem: float, rng,
                     bias: dict) -> Workload:
    phases = (
        constant(int(rng.integers(4, 9)), 0.25, 0.2, wander=0.01),
        periodic(
            int(rng.integers(90, 150)), cpu, mem,
            cpu_amp=0.08, mem_amp=0.06,
            period_s=rng.uniform(30, 70), burst_rate=2.0,
        ),
        periodic(
            int(rng.integers(50, 90)), cpu * 0.95, min(mem * 1.05, 1.0),
            cpu_amp=0.06, mem_amp=0.05,
            period_s=rng.uniform(25, 55), burst_rate=1.5,
        ),
    )
    return Workload(name, suite, phases, WorkloadTraits.random(rng, bias))


def build_suite(suite: str, seeds: SeedSequenceFactory) -> list[Workload]:
    """All workloads of one suite, deterministically from the seed factory."""
    out: list[Workload] = []
    if suite == "SPEC":
        for i, name in enumerate(_SPEC_NAMES):
            out.append(_spec_workload(name, i, seeds.generator(f"spec.{name}")))
    elif suite == "PARSEC":
        for i, name in enumerate(_PARSEC_NAMES):
            out.append(_parsec_workload(name, i, seeds.generator(f"parsec.{name}")))
    elif suite == "HPCC":
        for i, name in enumerate(_HPCC_NAMES):
            out.append(_hpcc_workload(name, i, seeds.generator(f"hpcc.{name}")))
    elif suite == "Graph500":
        for i, name in enumerate(("bfs", "sssp")):
            out.append(_graph500_workload(name, i, seeds.generator(f"graph500.{name}")))
    elif suite == "HPL-AI":
        out.append(
            _single_workload(
                "hpl_ai", "HPL-AI", 0.97, 0.25,
                seeds.generator("hplai"), {"ipc": 0.25, "locality": 0.25},
            )
        )
    elif suite == "SMG2000":
        out.append(
            _single_workload(
                "smg2000", "SMG2000", 0.6, 0.7,
                seeds.generator("smg2000"), {"locality": -0.15, "mem": 0.1},
            )
        )
    elif suite == "HPCG":
        out.append(
            _single_workload(
                "hpcg", "HPCG", 0.5, 0.85,
                seeds.generator("hpcg"), {"locality": -0.3, "mem": 0.2},
            )
        )
    else:
        from ..errors import WorkloadError

        raise WorkloadError(f"unknown suite {suite!r}")
    return out
