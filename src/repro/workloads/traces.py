"""Replay externally-recorded activity traces as workloads.

Users with real utilisation logs (e.g. exported from collectd or a job
profiler) can replay them through the simulator instead of the synthetic
catalog: a CSV with ``cpu`` and ``mem`` columns in [0, 1] becomes a
:class:`TraceWorkload` usable anywhere a catalog workload is.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError, WorkloadError
from ..hardware.pmu import WorkloadTraits
from ..utils.rng import as_generator
from ..utils.validation import check_1d, check_consistent_length


@dataclass(frozen=True)
class TraceWorkload:
    """A workload defined by recorded per-second activity arrays.

    Duck-types the parts of :class:`repro.workloads.base.Workload` the
    simulator uses (``name``, ``traits``, ``synthesize``,
    ``nominal_duration_s``). Replays are deterministic; requests longer
    than the recording loop it.
    """

    name: str
    cpu_activity: np.ndarray
    mem_intensity: np.ndarray
    traits: WorkloadTraits = field(default_factory=WorkloadTraits)
    suite: str = "TRACE"

    def __post_init__(self) -> None:
        cpu = check_1d(self.cpu_activity, "cpu_activity")
        mem = check_1d(self.mem_intensity, "mem_intensity")
        check_consistent_length(cpu, mem, names=("cpu_activity", "mem_intensity"))
        if cpu.shape[0] < 1:
            raise ValidationError("trace must contain at least one sample")
        for label, a in (("cpu_activity", cpu), ("mem_intensity", mem)):
            if ((a < 0) | (a > 1)).any():
                raise ValidationError(f"{label} must lie in [0, 1]")
        object.__setattr__(self, "cpu_activity", cpu)
        object.__setattr__(self, "mem_intensity", mem)

    @property
    def nominal_duration_s(self) -> int:
        return int(self.cpu_activity.shape[0])

    def synthesize(
        self,
        duration_s: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Replay (looped/truncated to ``duration_s``); rng is unused —
        recorded traces are replayed verbatim."""
        total = self.nominal_duration_s if duration_s is None else int(duration_s)
        if total < 1:
            raise ValidationError("duration_s must be >= 1")
        reps = -(-total // self.nominal_duration_s)  # ceil division
        cpu = np.tile(self.cpu_activity, reps)[:total]
        mem = np.tile(self.mem_intensity, reps)[:total]
        return cpu.copy(), mem.copy()


def load_trace_csv(
    path: str,
    name: "str | None" = None,
    traits_seed: "int | None" = None,
) -> TraceWorkload:
    """Build a :class:`TraceWorkload` from a CSV with cpu/mem columns.

    Values outside [0, 1] are rejected (normalise utilisation before
    export). When ``traits_seed`` is given, hidden microarchitectural
    traits are drawn for the replay; otherwise neutral defaults are used.
    """
    cpu, mem = [], []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"cpu", "mem"} <= set(reader.fieldnames):
            raise WorkloadError("trace CSV needs 'cpu' and 'mem' columns")
        for row in reader:
            cpu.append(float(row["cpu"]))
            mem.append(float(row["mem"]))
    if not cpu:
        raise WorkloadError(f"trace CSV {path!r} has no rows")
    traits = (
        WorkloadTraits.random(as_generator(traits_seed))
        if traits_seed is not None
        else WorkloadTraits()
    )
    import os

    return TraceWorkload(
        name=name or os.path.splitext(os.path.basename(path))[0],
        cpu_activity=np.asarray(cpu),
        mem_intensity=np.asarray(mem),
        traits=traits,
    )
