"""The 96-benchmark catalog and the Table-3 seen/unseen split protocol."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..utils.rng import SeedSequenceFactory
from .base import Workload
from .suites import build_suite

#: Benchmark counts per suite (§5.3 of the paper).
SUITE_SIZES: dict[str, int] = {
    "SPEC": 43,
    "PARSEC": 36,
    "HPCC": 12,
    "Graph500": 2,
    "HPL-AI": 1,
    "SMG2000": 1,
    "HPCG": 1,
}

#: Suite rotation order used in Table 3 (each row holds one suite out as the
#: unseen test set).
TABLE3_TEST_SUITES: tuple[str, ...] = (
    "HPCG",
    "SMG2000",
    "HPL-AI",
    "Graph500",
    "HPCC",
    "PARSEC",
    "SPEC",
)


@dataclass(frozen=True)
class SuiteSplit:
    """One Table-3 row: the held-out suite and the remaining training pool."""

    test_suite: str
    train_suites: tuple[str, ...]


def table3_splits() -> tuple[SuiteSplit, ...]:
    """The seven train/test suite combinations from Table 3."""
    all_suites = tuple(SUITE_SIZES)
    return tuple(
        SuiteSplit(
            test_suite=t,
            train_suites=tuple(s for s in all_suites if s != t),
        )
        for t in TABLE3_TEST_SUITES
    )


class BenchmarkCatalog:
    """The full 96-benchmark collection, built deterministically from a seed.

    The catalog is the single source of workload identity for the whole
    evaluation: experiments ask it for suites or individual benchmarks and
    derive measurement seeds from its factory, so two runs with the same
    root seed produce byte-identical campaigns.
    """

    def __init__(self, seed: int = 2023) -> None:
        self._seeds = SeedSequenceFactory(seed).child("catalog")
        self._by_suite: dict[str, list[Workload]] = {
            suite: build_suite(suite, self._seeds) for suite in SUITE_SIZES
        }
        for suite, expected in SUITE_SIZES.items():
            actual = len(self._by_suite[suite])
            if actual != expected:
                raise WorkloadError(
                    f"suite {suite} built {actual} workloads, expected {expected}"
                )
        self._by_name: dict[str, Workload] = {}
        for workloads in self._by_suite.values():
            for w in workloads:
                if w.name in self._by_name:
                    raise WorkloadError(f"duplicate workload name {w.name!r}")
                self._by_name[w.name] = w

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    @property
    def suites(self) -> tuple[str, ...]:
        return tuple(self._by_suite)

    def suite(self, name: str) -> list[Workload]:
        """All workloads in one suite."""
        try:
            return list(self._by_suite[name])
        except KeyError:
            raise WorkloadError(
                f"unknown suite {name!r}; known: {sorted(self._by_suite)}"
            ) from None

    def get(self, name: str) -> Workload:
        """One workload by its catalog name (e.g. ``"hpcc_fft"``)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkloadError(f"unknown workload {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._by_name)

    def split(self, test_suite: str) -> tuple[list[Workload], list[Workload]]:
        """(train, test) workload lists for one Table-3 row."""
        if test_suite not in self._by_suite:
            raise WorkloadError(f"unknown suite {test_suite!r}")
        train: list[Workload] = []
        for s, workloads in self._by_suite.items():
            if s != test_suite:
                train.extend(workloads)
        return train, list(self._by_suite[test_suite])


def default_catalog(seed: int = 2023) -> BenchmarkCatalog:
    """The catalog used by all examples and benchmarks."""
    return BenchmarkCatalog(seed)
