"""Streaming pipeline primitives: chunk records, stages, sinks.

The monitoring layer composes these into its ingest → calibrate → gate →
restore → attribute → sink pipeline (``repro.monitor.pipeline``); they
carry no monitor-specific state so other producers (the fleet front-end,
replayed logs) can reuse them.
"""

from .chunks import PowerChunk, chunk_spans
from .sinks import JsonlSink, Sink, chunk_record, end_run_record, iter_jsonl
from .stages import RunContext, Stage, StreamPipeline

__all__ = [
    "PowerChunk",
    "chunk_spans",
    "RunContext",
    "Stage",
    "StreamPipeline",
    "Sink",
    "JsonlSink",
    "iter_jsonl",
    "chunk_record",
    "end_run_record",
]
