"""Pluggable sinks: where fully-restored chunks go.

The monitor's in-memory :class:`~repro.monitor.service.MonitorLog` is one
implementation (wrapped by ``repro.monitor.sinks.MemoryLogSink``); the
:class:`JsonlSink` here streams the same records to an append-only JSONL
file so a long-lived service can persist restored traces without holding
them. A sink sees every finished chunk in trace order via ``write`` and a
run boundary via ``end_run``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .chunks import PowerChunk


def chunk_record(chunk: PowerChunk) -> dict:
    """The canonical JSON-safe record for one finished chunk.

    This is the wire shape shared by :class:`JsonlSink` files and the
    service daemon's ``/stream`` ndjson endpoint — float lists round-trip
    ``float64`` bitwise through ``repr``-based JSON encoding.
    """
    return {
        "event": "chunk",
        "node_id": chunk.node_id,
        "workload": chunk.workload,
        "start": int(chunk.start),
        "stop": int(chunk.stop),
        "seq": int(chunk.seq),
        "mode": chunk.mode,
        "p_node": [] if chunk.p_node is None else chunk.p_node.tolist(),
        "p_cpu": [] if chunk.p_cpu is None else chunk.p_cpu.tolist(),
        "p_mem": [] if chunk.p_mem is None else chunk.p_mem.tolist(),
        "p_gpu": [] if chunk.p_gpu is None else chunk.p_gpu.tolist(),
        "provenance": (
            [] if chunk.provenance is None
            else chunk.provenance.astype(int).tolist()
        ),
    }


def end_run_record(node_id: str, workload: str, mode: str) -> dict:
    """The canonical run-boundary record (follows a run's last chunk)."""
    return {
        "event": "end_run",
        "node_id": node_id,
        "workload": workload,
        "mode": mode,
    }


class Sink:
    """Receives fully-processed chunks from the pipeline's sink stage."""

    def write(self, chunk: PowerChunk) -> None:
        raise NotImplementedError

    def end_run(self, node_id: str, workload: str, mode: str) -> None:
        """Called once per run after its last chunk was written."""

    def close(self) -> None:
        """Release any held resources (files, connections)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonlSink(Sink):
    """Append-only JSONL persistence: one record per chunk / run boundary.

    Chunk records carry the restored arrays as plain lists::

        {"event": "chunk", "node_id": ..., "workload": ..., "start": ...,
         "stop": ..., "seq": ..., "mode": ..., "p_node": [...],
         "p_cpu": [...], "p_mem": [...], "provenance": [...]}

    Run boundaries are ``{"event": "end_run", ...}`` records. The file is
    opened lazily on the first write and flushed per record, so a tail of
    the file is always parseable.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None

    def _handle(self):
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def _emit(self, record: dict) -> None:
        fh = self._handle()
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()

    def write(self, chunk: PowerChunk) -> None:
        self._emit(chunk_record(chunk))

    def end_run(self, node_id: str, workload: str, mode: str) -> None:
        self._emit(end_run_record(node_id, workload, mode))

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def iter_jsonl(path):
    """Yield the records of a JSONL sink file (tests and offline analysis)."""
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
