"""Stage protocol and pipeline driver for streaming power monitoring.

A pipeline is an ordered list of stateless :class:`Stage` objects; all
per-run state lives on the :class:`RunContext`, so one stage list can
serve many interleaved runs (the fleet front-end drives one context per
node through shared stages).

Lifecycle per run: every stage's ``open_run`` fires in order, then each
source chunk is pushed through ``process`` stage by stage, then stages are
flushed in order (a flushed chunk still traverses the *downstream*
stages), then every stage's ``close_run`` fires. ``process`` may return a
chunk, a list of chunks, or None (absorbed — e.g. the static restorer
holding samples back until its fusion window closes).

The driver wraps every stage callback in the stage's tracer span and
counts chunks/samples entering each stage, so per-stage latency and
throughput come for free in the ambient observability stack.
"""

from __future__ import annotations

from ..obs import current_tracer, get_registry
from .chunks import PowerChunk


class RunContext:
    """Mutable per-run state shared by all stages of a pipeline."""

    def __init__(self, node_id: str, workload: str, n_samples: int) -> None:
        self.node_id = node_id
        self.workload = workload
        self.n_samples = int(n_samples)
        #: restoration mode for the run; stages may update it (a failing IM
        #: feed degrades the whole run to "model_only" before restoration).
        self.mode = ""


class Stage:
    """One step of the monitoring pipeline. Subclasses override hooks.

    Stages hold no per-run state — everything mutable goes on the
    :class:`RunContext` so stage instances are reusable across concurrent
    runs.
    """

    #: short identifier used in the per-stage metrics labels.
    name: str = "stage"
    #: tracer span wrapped around every callback; None disables tracing.
    span: "str | None" = None

    def open_run(self, ctx: RunContext) -> None:
        """Run-scoped setup (may consume the whole-run inputs on ctx)."""

    def process(self, ctx: RunContext, chunk: PowerChunk):
        """Transform one chunk; return a chunk, a list of chunks, or None."""
        return chunk

    def flush(self, ctx: RunContext):
        """Emit any held-back chunks once the source is exhausted."""
        return []

    def close_run(self, ctx: RunContext) -> None:
        """Run-scoped teardown (sinks end the run here)."""


class StreamPipeline:
    """Drives chunks through an ordered list of stages."""

    def __init__(self, stages: "list[Stage]") -> None:
        self.stages = list(stages)
        #: per-registry cache of the two per-stage counter children, so the
        #: per-chunk hot path skips family lookup and label validation. A
        #: pipeline normally runs under exactly one ambient registry; the
        #: size guard keeps pathological registry churn bounded.
        self._enter_cache: "dict[object, dict[str, tuple]]" = {}

    def _enter(self, stage: Stage, chunk: PowerChunk) -> None:
        registry = get_registry()
        per_registry = self._enter_cache.get(registry)
        if per_registry is None:
            if len(self._enter_cache) >= 8:
                self._enter_cache.clear()
            per_registry = self._enter_cache[registry] = {}
        pair = per_registry.get(stage.name)
        if pair is None:
            pair = per_registry[stage.name] = (
                registry.counter(
                    "repro_stream_chunks_total",
                    "Chunks entering each pipeline stage.", ("stage",),
                ).labels(stage=stage.name),
                registry.counter(
                    "repro_stream_samples_total",
                    "Samples entering each pipeline stage.", ("stage",),
                ).labels(stage=stage.name),
            )
        pair[0].inc()
        pair[1].inc(chunk.n_samples)

    def _timed(self, stage: Stage, fn, *args):
        if stage.span is None:
            return fn(*args)
        with current_tracer().span(stage.span):
            return fn(*args)

    def _push(self, ctx: RunContext, chunk: PowerChunk, i: int) -> "list[PowerChunk]":
        """Send one chunk through stages ``i..end``; returns what survives."""
        if i >= len(self.stages):
            return [chunk]
        stage = self.stages[i]
        self._enter(stage, chunk)
        emitted = self._timed(stage, stage.process, ctx, chunk)
        if emitted is None:
            return []
        if isinstance(emitted, PowerChunk):
            emitted = [emitted]
        out: "list[PowerChunk]" = []
        for c in emitted:
            out.extend(self._push(ctx, c, i + 1))
        return out

    # Single-step entry points for external drivers (the fleet front-end
    # interleaves many runs, pausing between stages to batch inference
    # across them).
    def open_run(self, ctx: RunContext) -> None:
        for stage in self.stages:
            self._timed(stage, stage.open_run, ctx)

    def close_run(self, ctx: RunContext) -> None:
        for stage in self.stages:
            stage.close_run(ctx)

    def apply(self, ctx: RunContext, chunk: PowerChunk, i: int) -> "list[PowerChunk]":
        """Run exactly stage ``i`` on one chunk; returns what it emitted."""
        stage = self.stages[i]
        self._enter(stage, chunk)
        emitted = self._timed(stage, stage.process, ctx, chunk)
        if emitted is None:
            return []
        return [emitted] if isinstance(emitted, PowerChunk) else list(emitted)

    def run(self, ctx: RunContext, chunks) -> "list[PowerChunk]":
        """Process a whole run; returns the fully-processed chunks in order."""
        self.open_run(ctx)
        out: "list[PowerChunk]" = []
        for chunk in chunks:
            out.extend(self._push(ctx, chunk, 0))
        # Flush in stage order: a chunk released by stage j still traverses
        # stages j+1..end before those stages flush themselves.
        for j, stage in enumerate(self.stages):
            for c in self._timed(stage, stage.flush, ctx) or []:
                out.extend(self._push(ctx, c, j + 1))
        self.close_run(ctx)
        return out
