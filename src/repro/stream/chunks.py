"""Chunk records flowing through the streaming monitor pipeline.

A :class:`PowerChunk` is one contiguous span of one node's run. Stages
enrich it in place as it moves down the pipeline: ingest attaches the PMC
rows, restore fills ``p_node`` (and, for the static path, may re-span the
chunk — Algorithm-1 holds reach half a miss-interval back, so restored
spans lag ingested spans), attribute fills ``p_cpu``/``p_mem``, sinks
persist it. Spans always tile ``[0, n)`` of the run exactly and arrive in
trace order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError


@dataclass
class PowerChunk:
    """One contiguous span ``[start, stop)`` of one monitored run."""

    node_id: str
    workload: str
    start: int
    stop: int
    #: chunk ordinal within the run (0-based, in trace order).
    seq: int = 0
    #: True on the run's last chunk — stages flush their tails into it.
    final: bool = False
    #: restoration mode ("static" / "dynamic" / "model_only"); set by the
    #: restore stage, empty before it.
    mode: str = ""
    pmcs: "np.ndarray | None" = None
    p_node: "np.ndarray | None" = None
    p_cpu: "np.ndarray | None" = None
    p_mem: "np.ndarray | None" = None
    #: accelerator component power; only filled by three-way attribution
    #: heads (GPU device classes), None on CPU-only nodes.
    p_gpu: "np.ndarray | None" = None
    provenance: "np.ndarray | None" = None
    #: optional pre-computed ResModel output for the static path (the fleet
    #: front-end batches these across nodes before feeding the pipeline).
    residual_hat: "np.ndarray | None" = None

    @property
    def n_samples(self) -> int:
        return int(self.stop - self.start)

    def __len__(self) -> int:
        return self.n_samples


def chunk_spans(n: int, chunk_size: "int | None") -> "list[tuple[int, int]]":
    """The ``[start, stop)`` spans tiling an ``n``-sample run.

    ``chunk_size=None`` means one whole-run chunk (the compatibility path).
    An empty run yields no spans.
    """
    if chunk_size is None:
        chunk_size = max(n, 1)
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(s, min(s + chunk_size, n)) for s in range(0, n, chunk_size)]
