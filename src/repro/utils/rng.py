"""Deterministic randomness plumbing.

Every stochastic piece of the library (simulators, sensors, model weight
initialisation, samplers) accepts either a seed or a ``numpy`` Generator.
:class:`SeedSequenceFactory` hands out independent child generators so that
adding a new consumer never perturbs the stream any existing consumer sees —
the standard trick for reproducible parallel simulation.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_generator(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Normalise a seed / generator / None into a ``numpy`` Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class SeedSequenceFactory:
    """Spawns independent, reproducible child generators from one root seed.

    >>> f = SeedSequenceFactory(42)
    >>> a = f.generator("sensor.ipmi")
    >>> b = f.generator("sensor.pmc")

    Children are keyed by name: asking for the same name twice yields
    generators with identical streams, and distinct names yield streams that
    are statistically independent regardless of request order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def generator(self, name: str) -> np.random.Generator:
        """A generator whose stream depends only on (root seed, name)."""
        # Stable, platform-independent hash of the whole name (not Python's
        # hash(), which is salted per process).
        digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
        words = [int.from_bytes(digest[i : i + 4], "little") for i in (0, 4, 8, 12)]
        child = np.random.SeedSequence([self._seed, *words])
        return np.random.default_rng(child)

    def child(self, name: str) -> "SeedSequenceFactory":
        """A factory namespaced under ``name`` (for nested subsystems)."""
        g = self.generator(name)
        return SeedSequenceFactory(int(g.integers(0, 2**31 - 1)))
