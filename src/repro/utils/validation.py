"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError


def check_1d(a, name: str = "array") -> np.ndarray:
    """Coerce to a 1-D float array; raise :class:`ValidationError` otherwise."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_2d(a, name: str = "array") -> np.ndarray:
    """Coerce to a 2-D float array; raise :class:`ValidationError` otherwise."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_consistent_length(*arrays, names: "tuple[str, ...] | None" = None) -> None:
    """All arrays must share the same first-dimension length."""
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) > 1:
        label = names if names else tuple(f"arg{i}" for i in range(len(arrays)))
        pairs = ", ".join(f"{n}={l}" for n, l in zip(label, lengths))
        raise ValidationError(f"inconsistent lengths: {pairs}")


def check_positive(value, name: str = "value", strict: bool = True):
    """Validate a (strictly) positive scalar; returns the value."""
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value, name: str = "fraction") -> float:
    """Validate a scalar in the closed interval [0, 1]."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return v
