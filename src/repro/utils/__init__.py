"""Shared helpers: seeded RNG plumbing, time-series ops, validation."""

from .rng import SeedSequenceFactory, as_generator
from .timeseries import (
    decimate_indices,
    masked_from_decimation,
    moving_average,
    piecewise_hold,
    sliding_windows,
)
from .validation import (
    check_1d,
    check_2d,
    check_consistent_length,
    check_fraction,
    check_positive,
)

__all__ = [
    "SeedSequenceFactory",
    "as_generator",
    "decimate_indices",
    "masked_from_decimation",
    "moving_average",
    "piecewise_hold",
    "sliding_windows",
    "check_1d",
    "check_2d",
    "check_consistent_length",
    "check_fraction",
    "check_positive",
]
