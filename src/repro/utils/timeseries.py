"""Time-series primitives used by the TRR dataset builders and sensors.

These are all vectorised (stride-trick windows, boolean masks) per the HPC
guide: no per-sample Python loops on hot paths.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ValidationError
from .validation import check_1d, check_positive


def sliding_windows(a: np.ndarray, width: int, step: int = 1) -> np.ndarray:
    """Overlapping windows over the leading axis, as a zero-copy view.

    Returns shape ``(n_windows, width, *a.shape[1:])``. The result is a view;
    callers that mutate must copy first.
    """
    check_positive(width, "width")
    check_positive(step, "step")
    a = np.asarray(a)
    if a.shape[0] < width:
        raise ValidationError(
            f"series of length {a.shape[0]} is shorter than window width {width}"
        )
    view = sliding_window_view(a, width, axis=0)
    # sliding_window_view puts the window axis last; move it after axis 0.
    view = np.moveaxis(view, -1, 1)
    return view[::step]


def decimate_indices(n: int, interval: int, offset: int = 0) -> np.ndarray:
    """Indices a slow sensor would sample: every ``interval``-th of ``n``."""
    check_positive(interval, "interval")
    if not 0 <= offset < interval:
        raise ValidationError(f"offset must lie in [0, {interval}), got {offset}")
    return np.arange(offset, n, interval)


def masked_from_decimation(n: int, interval: int, offset: int = 0) -> np.ndarray:
    """Boolean mask over ``n`` samples: True where the slow sensor observed."""
    mask = np.zeros(n, dtype=bool)
    mask[decimate_indices(n, interval, offset)] = True
    return mask


def moving_average(a: np.ndarray, width: int) -> np.ndarray:
    """Centred moving average with edge shrinkage (same length as input)."""
    x = check_1d(a, "series")
    check_positive(width, "width")
    if width == 1:
        return x.copy()
    kernel = np.ones(width)
    num = np.convolve(x, kernel, mode="same")
    den = np.convolve(np.ones_like(x), kernel, mode="same")
    return num / den


def piecewise_hold(values: np.ndarray, indices: np.ndarray, n: int) -> np.ndarray:
    """Zero-order hold: extend sparse readings forward to a dense series.

    ``values[k]`` is held over ``[indices[k], indices[k+1])``; samples before
    the first index take the first value.
    """
    idx = np.asarray(indices, dtype=np.int64)
    vals = check_1d(values, "values")
    if idx.shape[0] != vals.shape[0]:
        raise ValidationError("values and indices must have equal length")
    if idx.shape[0] == 0:
        raise ValidationError("need at least one reading to hold")
    out = np.empty(n, dtype=np.float64)
    positions = np.searchsorted(idx, np.arange(n), side="right") - 1
    positions = np.clip(positions, 0, len(vals) - 1)
    out[:] = vals[positions]
    return out
